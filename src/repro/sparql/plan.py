"""Cost-based query planning for basic graph patterns.

The seed evaluator executes every BGP as a greedy-ordered backtracking
index-nested-loop join.  That is the right shape for highly selective
queries (probe a handful of keys), but quadratic-ish where the paper
needs low latency: star and chain joins over broad predicates enumerate
the same index fan-outs once per partial binding.  This module adds the
standard lever — a logical plan chosen by a cost model over collected
statistics — while keeping the ID-space discipline of the storage
engine: every intermediate row is a plain tuple of dictionary IDs and
terms are decoded only for FILTER evaluation and final materialization.

Plan nodes
----------
* :class:`ScanNode` — one triple pattern streamed off a backend index,
  with same-pattern repeated-variable checks and pushed-down FILTERs.
* :class:`HashJoinNode` — builds a hash table over the (smaller) right
  input keyed by the shared variables, then streams the left input
  through it.  Each pattern is scanned exactly once.
* :class:`BindJoinNode` — the index-nested-loop strategy: probe the
  store once per left row with the shared variables bound.  Chosen when
  the left input is estimated to be much smaller than a full scan of
  the right pattern, which keeps selective queries (and their cost-meter
  profile) identical to the seed path.

Cost model
----------
Scan cardinalities come from the backend's free estimates
(:meth:`~repro.store.TripleStore.cardinality_estimate`); join output
cardinalities divide by the distinct-subject/object counts collected in
:meth:`~repro.store.TripleStore.predicate_stats_ids`.  Planning is
greedy left-deep: start from the most selective pattern, repeatedly
join the connected pattern with the smallest estimated output.  Groups
a hash join cannot cover — no patterns, fully concrete patterns
(existence checks), or a disconnected join graph (cartesian corners,
e.g. unbound-predicate probes) — return ``None`` and the evaluator
falls back to the seed backtracking path.

``explain_plan`` renders the tree for the EXPLAIN surface wired through
:class:`~repro.sparql.evaluator.QueryEvaluator`, the endpoint, the
server, and the CLI (see ``docs/query-planning.md``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..store.triplestore import CostMeter, TripleStore
from .ast_nodes import Expression, GraphPattern
from .errors import ExpressionError
from .functions import effective_boolean_value, evaluate_expression

__all__ = [
    "PlanNode",
    "ScanNode",
    "HashJoinNode",
    "BindJoinNode",
    "QueryPlanner",
    "explain_plan",
]

#: A bind join is preferred while the accumulated left side is this many
#: times smaller than a full scan of the candidate pattern.  Probing is
#: per-row work (generator set-up, index descent), so the break-even
#: point sits well above 1:1.
BIND_JOIN_FACTOR = 8

#: One intermediate row: dictionary IDs aligned with ``node.variables``.
IdRow = Tuple[int, ...]

#: Compiled filter: the expression plus the (name, slot) pairs to decode.
_CompiledFilter = Tuple[Expression, Tuple[Tuple[str, int], ...]]


class PlanNode:
    """Base class: a streaming operator producing ID-tuple rows.

    ``variables`` fixes the slot order of every row the node yields;
    ``est_rows`` is the cost model's output-cardinality estimate;
    ``filters`` are evaluated (on decoded terms) against each produced
    row, dropping rows that fail or error — SPARQL FILTER semantics.
    """

    variables: Tuple[str, ...]
    est_rows: int
    filters: List[Expression]

    def __init__(self, variables: Tuple[str, ...], est_rows: int) -> None:
        self.variables = variables
        self.est_rows = est_rows
        self.filters = []
        self.slot_of: Dict[str, int] = {name: i for i, name in enumerate(variables)}

    # -- execution -----------------------------------------------------

    def rows(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        produced = self._produce(store, meter)
        if not self.filters:
            return produced
        return self._filtered(produced, store)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        raise NotImplementedError

    def _filtered(self, rows: Iterator[IdRow], store: TripleStore) -> Iterator[IdRow]:
        decode = store.decode_id
        compiled: List[_CompiledFilter] = [
            (
                expr,
                tuple(
                    (name, self.slot_of[name])
                    for name in expr.variables()
                    if name in self.slot_of
                ),
            )
            for expr in self.filters
        ]
        for row in rows:
            for expr, slots in compiled:
                binding = {name: decode(row[slot]) for name, slot in slots}
                try:
                    if not effective_boolean_value(evaluate_expression(expr, binding)):
                        break
                except ExpressionError:
                    break  # erroring filters drop the row, per the spec
            else:
                yield row

    # -- display -------------------------------------------------------

    def label(self) -> str:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        return ()


def _pattern_text(pattern: TriplePattern) -> str:
    return " ".join(term.n3() for term in pattern.as_tuple())


class ScanNode(PlanNode):
    """Stream one triple pattern off the backend index."""

    def __init__(self, store: TripleStore, pattern: TriplePattern, est_rows: int) -> None:
        self.pattern = pattern
        encoded = store.encode_pattern(pattern)
        probe: List[Optional[int]] = [None, None, None]
        out: List[Tuple[int, str]] = []
        checks: List[Tuple[int, int]] = []
        first_at: Dict[str, int] = {}
        for position, entry in enumerate(encoded):
            if isinstance(entry, str):
                if entry in first_at:
                    checks.append((first_at[entry], position))
                else:
                    first_at[entry] = position
                    out.append((position, entry))
            else:
                probe[position] = entry
        self.probe: Tuple[Optional[int], Optional[int], Optional[int]] = tuple(probe)  # type: ignore[assignment]
        self.out_positions = tuple(position for position, _ in out)
        self.checks = tuple(checks)
        super().__init__(tuple(name for _, name in out), est_rows)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        s, p, o = self.probe
        positions = self.out_positions
        rows = store.match_ids(s, p, o, meter)
        if self.checks:
            checks = self.checks
            rows = (
                row for row in rows
                if all(row[a] == row[b] for a, b in checks)
            )
        # Specialized projections: this is the innermost loop of every
        # plan, and a generator-expression tuple per row doubles its cost.
        if len(positions) == 1:
            a = positions[0]
            for row in rows:
                yield (row[a],)
        elif len(positions) == 2:
            a, b = positions
            for row in rows:
                yield (row[a], row[b])
        else:
            for row in rows:
                yield row

    def label(self) -> str:
        return f"Scan({_pattern_text(self.pattern)})"


class HashJoinNode(PlanNode):
    """Hash the right input on the shared variables, stream the left.

    Both inputs are scanned exactly once; each emitted row charges the
    cost meter one unit so budgeted endpoints retain their abort
    behaviour on explosive joins.
    """

    def __init__(self, left: PlanNode, right: PlanNode, keys: Tuple[str, ...], est_rows: int) -> None:
        self.left = left
        self.right = right
        self.keys = keys
        self.left_key_slots = tuple(left.slot_of[name] for name in keys)
        self.right_key_slots = tuple(right.slot_of[name] for name in keys)
        residual = [name for name in right.variables if name not in keys]
        self.right_residual_slots = tuple(right.slot_of[name] for name in residual)
        super().__init__(left.variables + tuple(residual), est_rows)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        # Single shared variable is the overwhelmingly common join shape
        # (subject stars, object-subject chains); key on the bare int
        # instead of a 1-tuple to keep build and probe at one dict op.
        single = len(self.left_key_slots) == 1
        rkeys = self.right_key_slots
        rres = self.right_residual_slots
        lkey = self.left_key_slots[0] if single else None
        lkeys = self.left_key_slots
        charge = meter.charge if meter is not None else None
        if not rres:
            # Semi-join: the build side adds no variables, so a bucket is
            # just a multiplicity and no output tuple is re-allocated.
            counts: Dict[object, int] = {}
            for row in self.right.rows(store, meter):
                key = row[rkeys[0]] if single else tuple(row[i] for i in rkeys)
                counts[key] = counts.get(key, 0) + 1
            cget = counts.get
            for lrow in self.left.rows(store, meter):
                n = cget(lrow[lkey] if single else tuple(lrow[i] for i in lkeys))
                if n is None:
                    continue
                if charge is not None:
                    charge(n)
                if n == 1:
                    yield lrow
                else:
                    for _ in range(n):
                        yield lrow
            return
        table: Dict[object, List[IdRow]] = {}
        rres0 = rres[0] if len(rres) == 1 else None
        for row in self.right.rows(store, meter):
            key = row[rkeys[0]] if single else tuple(row[i] for i in rkeys)
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append(
                (row[rres0],) if rres0 is not None else tuple(row[i] for i in rres)
            )
        get = table.get
        for lrow in self.left.rows(store, meter):
            key = lrow[lkey] if single else tuple(lrow[i] for i in lkeys)
            bucket = get(key)
            if bucket is None:
                continue
            if charge is not None:
                charge(len(bucket))
            for residual in bucket:
                yield lrow + residual

    def label(self) -> str:
        keys = ", ".join(f"?{name}" for name in self.keys)
        return f"HashJoin(on {keys})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


class BindJoinNode(PlanNode):
    """Probe the store once per left row with shared variables bound."""

    def __init__(
        self,
        store: TripleStore,
        left: PlanNode,
        pattern: TriplePattern,
        est_rows: int,
    ) -> None:
        self.left = left
        self.pattern = pattern
        encoded = store.encode_pattern(pattern)
        # Probe spec per position: a constant ID, a left slot, or free.
        spec: List[Tuple[str, Optional[int]]] = []
        out: List[Tuple[int, str]] = []
        checks: List[Tuple[int, int]] = []
        first_at: Dict[str, int] = {}
        for position, entry in enumerate(encoded):
            if isinstance(entry, str):
                if entry in left.slot_of:
                    spec.append(("left", left.slot_of[entry]))
                elif entry in first_at:
                    spec.append(("free", None))
                    checks.append((first_at[entry], position))
                else:
                    first_at[entry] = position
                    spec.append(("free", None))
                    out.append((position, entry))
            else:
                spec.append(("const", entry))
        self.spec = tuple(spec)
        self.out_positions = tuple(position for position, _ in out)
        self.checks = tuple(checks)
        super().__init__(
            left.variables + tuple(name for _, name in out), est_rows
        )

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        (s_kind, s_val), (p_kind, p_val), (o_kind, o_val) = self.spec
        positions = self.out_positions
        checks = self.checks
        match_ids = store.match_ids
        for lrow in self.left.rows(store, meter):
            s = s_val if s_kind == "const" else lrow[s_val] if s_kind == "left" else None
            p = p_val if p_kind == "const" else lrow[p_val] if p_kind == "left" else None
            o = o_val if o_kind == "const" else lrow[o_val] if o_kind == "left" else None
            for row in match_ids(s, p, o, meter):
                if checks and not all(row[a] == row[b] for a, b in checks):
                    continue
                yield lrow + tuple(row[i] for i in positions)

    def label(self) -> str:
        return f"BindJoin({_pattern_text(self.pattern)})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left,)


class QueryPlanner:
    """Builds a left-deep hash/bind-join plan for one graph pattern."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def plan(self, group: GraphPattern, budget: Optional[int] = None) -> Optional[PlanNode]:
        """Return an executable plan, or ``None`` when the group needs
        the backtracking fallback (empty, existence checks, or a
        disconnected join graph).

        ``budget`` is the caller's cost-meter budget, if any.  Hash
        joins pay a full scan of the build pattern up front; on a
        budgeted (endpoint-guarded) evaluation that scan can burn the
        budget a selective probe sequence would never have touched, so
        a hash join is only chosen while its estimated metered cost
        still fits the budget with a 2x margin — beyond that the
        planner stays on bind joins, whose cost profile matches the
        seed backtracker's.
        """
        patterns = list(group.patterns)
        if not patterns:
            return None
        if any(not pattern.variables() for pattern in patterns):
            return None  # fully concrete patterns are existence checks
        store = self.store
        stats = store.predicate_stats_ids()
        scans = [
            ScanNode(store, pattern, store.cardinality_estimate(pattern))
            for pattern in patterns
        ]

        pending = list(group.filters)
        node: PlanNode = min(scans, key=lambda scan: scan.est_rows)
        scans.remove(node)  # type: ignore[arg-type]
        self._attach_filters(node, pending)
        est_cost = node.est_rows  # scan candidates charged so far

        while scans:
            connected = [
                scan for scan in scans
                if any(name in node.slot_of for name in scan.variables)
            ]
            if not connected:
                return None  # cartesian corner: leave it to the backtracker
            best = min(
                connected,
                key=lambda scan: self._join_estimate(node, scan, stats),
            )
            scans.remove(best)
            est = self._join_estimate(node, best, stats)
            hash_cost = est_cost + best.est_rows + est
            prefer_bind = node.est_rows * BIND_JOIN_FACTOR < best.est_rows
            over_budget = budget is not None and hash_cost * 2 > budget
            if prefer_bind or over_budget:
                node = BindJoinNode(store, node, best.pattern, est)
                est_cost += est  # probes charge per produced candidate
            else:
                # Push single-pattern filters below the build side so the
                # hash table only holds rows that can survive.
                self._attach_filters(best, pending)
                keys = tuple(
                    name for name in best.variables if name in node.slot_of
                )
                node = HashJoinNode(node, best, keys, est)
                est_cost = hash_cost
            self._attach_filters(node, pending)

        # Filters whose variables never appear in any pattern evaluate
        # against an unbound binding at the root: error -> row dropped,
        # exactly like the seed's last-depth assignment.
        node.filters.extend(pending)
        return node

    # -- cost model ----------------------------------------------------

    def _join_estimate(
        self,
        left: PlanNode,
        scan: ScanNode,
        stats: Dict[int, Tuple[int, int, int]],
    ) -> int:
        shared = [name for name in scan.variables if name in left.slot_of]
        distinct = 1
        for name in shared:
            distinct = max(distinct, self._distinct_values(scan, name, stats))
        return max(0, left.est_rows * scan.est_rows // max(distinct, 1))

    def _distinct_values(
        self,
        scan: ScanNode,
        name: str,
        stats: Dict[int, Tuple[int, int, int]],
    ) -> int:
        """Distinct count of variable ``name`` within ``scan``'s pattern."""
        pattern = scan.pattern
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            return max(scan.est_rows, 1)
        pid = self.store.term_id(predicate)
        stat = stats.get(pid)
        if stat is None:
            return max(scan.est_rows, 1)
        count, distinct_s, distinct_o = stat
        if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
            return max(distinct_s, 1)
        if isinstance(pattern.object, Variable) and pattern.object.name == name:
            return max(distinct_o, 1)
        return max(scan.est_rows, 1)

    # -- filter placement ----------------------------------------------

    @staticmethod
    def _attach_filters(node: PlanNode, pending: List[Expression]) -> None:
        """Attach every pending filter whose variables are now bound."""
        ready = [
            expr for expr in pending
            if all(name in node.slot_of for name in expr.variables())
        ]
        for expr in ready:
            node.filters.append(expr)
            pending.remove(expr)


def explain_plan(node: PlanNode, indent: int = 0) -> str:
    """Render the plan tree, one operator per line."""
    pad = "  " * indent
    line = f"{pad}{node.label()}  [est={node.est_rows}]"
    if node.filters:
        from .serializer import serialize_expression

        rendered = ", ".join(serialize_expression(expr) for expr in node.filters)
        line += f" filter({rendered})"
    lines = [line]
    for child in node.children():
        lines.append(explain_plan(child, indent + 1))
    return "\n".join(lines)
