"""Physical query plans: operator selection and ID-space execution.

This is stage four of the shared pipeline (parse → logical algebra →
optimize → physical execution; see :mod:`~repro.sparql.algebra` for
stages two and three).  :class:`QueryPlanner` compiles a normalized
logical tree into a tree of streaming physical operators.  Execution is
**batched and columnar**: operators exchange :class:`Batch` objects —
tuples of ``array('q')`` ID columns plus a length — via the
:meth:`PlanNode.batches` contract, and terms are decoded only for
FILTER evaluation and final materialization.  :meth:`PlanNode.rows`
remains as a thin row-at-a-time adapter over :meth:`~PlanNode.batches`
for consumers that want tuples (pagination, federation glue), and
:meth:`PlanNode.rows_tuple` preserves the original tuple-at-a-time
pipeline as the benchmark baseline (``batch_size=0``).

Plan nodes
----------
* :class:`ScanNode` — one triple pattern streamed off a backend index,
  with same-pattern repeated-variable checks and pushed-down FILTERs.
* :class:`HashJoinNode` — builds a hash table over the (smaller) right
  input keyed by the shared variables, then streams the left input
  through it.  Each pattern is scanned exactly once.  With no keys it
  degrades to the cross product (used for disjoint VALUES tables).
* :class:`BindJoinNode` — the index-nested-loop strategy: probe the
  store once per left row with the shared variables bound.  Chosen when
  the left input is estimated to be much smaller than a full scan of
  the right pattern, which keeps selective queries (and their cost-meter
  profile) identical to the seed path.
* :class:`UnionNode` — concatenates branch streams, padding variables a
  branch does not bind with ``None`` (the unbound slot marker).
* :class:`MinusNode` — anti-join on IDs implementing SPARQL MINUS
  compatibility (drop a left row when a right row agrees on at least
  one shared bound variable and disagrees on none).
* :class:`ValuesScanNode` — an inline VALUES table, interned into the
  store dictionary at plan time so downstream joins stay in ID space.
* :class:`RemoteScanNode` / :class:`RemoteBindJoinNode` — the federated
  operators: fetch a pattern (or exclusive group) from remote
  endpoints, or probe them once per *batch* of left rows by shipping
  the accumulated bindings as a single ``VALUES`` clause instead of one
  HTTP round-trip per binding.  Remote terms are interned into the
  mediator's dictionary, so every other operator composes unchanged.

Cost model
----------
Scan cardinalities come from the backend's free estimates
(:meth:`~repro.store.TripleStore.cardinality_estimate`); join output
cardinalities divide by the distinct-subject/object counts collected in
:meth:`~repro.store.TripleStore.predicate_stats_ids`.  Planning is
greedy left-deep: start from the most selective input, repeatedly
join the connected input with the smallest estimated output.  Shapes
the ID-space operators cannot express — fully concrete patterns
(existence checks), a disconnected pattern join graph, or a join keyed
on a variable some UNION branch or UNDEF cell may leave unbound —
return ``None`` and the evaluator falls back to the term-space
backtracking path, which implements full compatibility semantics.

``explain_plan`` renders the tree for the EXPLAIN surface wired through
:class:`~repro.sparql.evaluator.QueryEvaluator`, the endpoint, the
server, the federation, and the CLI (see ``docs/query-planning.md``).
"""

from __future__ import annotations

from array import array
from itertools import chain
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..store.dictionary import NO_ID
from ..store.triplestore import CostMeter, TripleStore
from .algebra import (
    AlgebraNode,
    BGP,
    Empty,
    Filter as LogicalFilter,
    Join as LogicalJoin,
    Minus as LogicalMinus,
    Union as LogicalUnion,
    ValuesTable,
    conjuncts,
    normalize,
    translate_group,
)
from .ast_nodes import Expression, GraphPattern, ValuesClause
from .errors import ExpressionError
from .functions import effective_boolean_value, evaluate_expression

__all__ = [
    "Batch",
    "PlanNode",
    "ScanNode",
    "ShardScanNode",
    "HashJoinNode",
    "BindJoinNode",
    "UnionNode",
    "MinusNode",
    "ValuesScanNode",
    "CompatJoinNode",
    "LeftJoinNode",
    "RemoteScanNode",
    "RemoteBindJoinNode",
    "QueryPlanner",
    "explain_plan",
    "refresh_plan_estimates",
]

#: A bind join is preferred while the accumulated left side is this many
#: times smaller than a full scan of the candidate pattern.  Probing is
#: per-row work (generator set-up, index descent), so the break-even
#: point sits well above 1:1.
BIND_JOIN_FACTOR = 8

#: One intermediate row: dictionary IDs aligned with ``node.variables``.
#: A ``None`` entry marks an unbound slot (UNION branch that skips the
#: variable, UNDEF cell in a VALUES table).
IdRow = Tuple[Optional[int], ...]

#: The unbound-slot sentinel inside batch columns.  ``array('q')`` can
#: only hold integers, and no valid dictionary ID is negative, so ``-1``
#: plays the role ``None`` plays in :data:`IdRow` tuples.
UNBOUND = -1

#: Rows per :class:`Batch` on the columnar path.  Matches the storage
#: seam's ``COLUMN_BATCH_SIZE`` so one ``match_columns`` batch becomes
#: one operator batch without re-chunking.
DEFAULT_BATCH_SIZE = 1024


class Batch:
    """A batch of intermediate rows in columnar layout.

    ``columns`` holds one ``array('q')`` of dictionary IDs per variable,
    in ``node.variables`` slot order; ``length`` is the row count (kept
    explicitly so zero-variable batches — existence rows — still have a
    cardinality).  ``has_unbound`` is True when some cell may hold the
    :data:`UNBOUND` sentinel; it lets :meth:`iter_rows` skip the
    ``-1 → None`` translation on the (overwhelmingly common) all-bound
    batches.  A False flag is a guarantee; True is merely conservative.
    """

    __slots__ = ("columns", "length", "has_unbound")

    def __init__(
        self,
        columns: Tuple[array, ...],
        length: int,
        has_unbound: bool = False,
    ) -> None:
        self.columns = columns
        self.length = length
        self.has_unbound = has_unbound

    def __len__(self) -> int:
        return self.length

    def iter_rows(self) -> Iterator[IdRow]:
        """Rows as :data:`IdRow` tuples (``None`` for unbound slots)."""
        if not self.columns:
            empty: IdRow = ()
            for _ in range(self.length):
                yield empty
            return
        if not self.has_unbound:
            yield from zip(*self.columns)
            return
        for raw in zip(*self.columns):
            yield tuple(None if cell == UNBOUND else cell for cell in raw)

    def iter_raw(self) -> Iterator[Tuple[int, ...]]:
        """Rows as raw int tuples (:data:`UNBOUND` kept as ``-1``)."""
        if not self.columns:
            empty: Tuple[int, ...] = ()
            for _ in range(self.length):
                yield empty
            return
        yield from zip(*self.columns)

#: Default number of left rows a RemoteBindJoinNode accumulates before
#: shipping them to the endpoints as one VALUES-constrained request.
REMOTE_BATCH_SIZE = 30

#: Compiled filter: the expression plus the (name, slot) pairs to decode.
_CompiledFilter = Tuple[Expression, Tuple[Tuple[str, int], ...]]


class PlanNode:
    """Base class: a streaming operator producing ID-tuple rows.

    ``variables`` fixes the slot order of every row the node yields;
    ``est_rows`` is the cost model's output-cardinality estimate;
    ``filters`` are evaluated (on decoded terms) against each produced
    row, dropping rows that fail or error — SPARQL FILTER semantics.
    """

    variables: Tuple[str, ...]
    est_rows: int
    filters: List[Expression]
    #: Variables that may be ``None`` in produced rows (propagated from
    #: UNION / UNDEF inputs).  Joins keyed on these need compatibility
    #: semantics and are left to the backtracking fallback.
    maybe_unbound: frozenset

    def __init__(self, variables: Tuple[str, ...], est_rows: int) -> None:
        self.variables = variables
        self.est_rows = est_rows
        self.filters = []
        self.maybe_unbound = frozenset()
        self.slot_of: Dict[str, int] = {name: i for i, name in enumerate(variables)}

    # -- execution -----------------------------------------------------

    def batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int = DEFAULT_BATCH_SIZE,
        tracer=None,
    ) -> Iterator[Batch]:
        """The primary execution contract: a stream of :class:`Batch`.

        Operators with a native ``_produce_batches`` stay columnar end
        to end; the base class adapts row-wise ``_produce`` operators by
        chunking, so every node speaks batches regardless of vintage.

        ``tracer`` (a :class:`~repro.sparql.trace.Tracer`) threads the
        EXPLAIN ANALYZE instrumentation through the tree.  It follows
        the cost-meter gating idiom: with the default ``None`` this
        method does nothing but pass the argument along, so the traced
        machinery costs the hot path exactly one ``is None`` test per
        operator per query.
        """
        produced = self._produce_batches(store, meter, batch_size, tracer)
        if self.filters:
            produced = self._filtered_batches(produced, store)
        if tracer is not None:
            return tracer.wrap_batches(self, produced)
        return produced

    def rows(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        tracer=None,
    ) -> Iterator[IdRow]:
        """Compatibility adapter: flatten :meth:`batches` into tuples."""
        for batch in self.batches(store, meter, tracer=tracer):
            yield from batch.iter_rows()

    def rows_tuple(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        """The legacy tuple-at-a-time pipeline, preserved verbatim.

        Children are pulled through ``rows_tuple`` as well, so the whole
        subtree stays row-wise — this is the baseline the batch-vs-tuple
        benchmark gate measures against (``QueryEvaluator(batch_size=0)``).
        """
        produced = self._produce(store, meter)
        if not self.filters:
            return produced
        return self._filtered(produced, store)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        raise NotImplementedError

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        """Default adapter: chunk the row-wise ``_produce`` into batches.

        Row-wise operators (federated fetches, compatibility joins) ride
        the columnar pipeline through this without any native code.
        """
        width = len(self.variables)
        if width == 0:
            count = 0
            for _ in self._batch_rows(store, meter, tracer):
                count += 1
                if count >= batch_size:
                    yield Batch((), count)
                    count = 0
            if count:
                yield Batch((), count)
            return
        buffers: List[List[int]] = [[] for _ in range(width)]
        has_unbound = False
        length = 0
        for row in self._batch_rows(store, meter, tracer):
            for slot, cell in enumerate(row):
                if cell is None:
                    cell = UNBOUND
                    has_unbound = True
                buffers[slot].append(cell)
            length += 1
            if length >= batch_size:
                yield Batch(
                    tuple(array("q", buf) for buf in buffers), length, has_unbound
                )
                buffers = [[] for _ in range(width)]
                has_unbound = False
                length = 0
        if length:
            yield Batch(
                tuple(array("q", buf) for buf in buffers), length, has_unbound
            )

    def _batch_rows(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        tracer,
    ) -> Iterator[IdRow]:
        """Row source for the chunking adapter.

        The remote operators override this to thread the tracer into
        their per-source fetch spans; every other row-wise operator
        ignores it (the node-level span from :meth:`batches` is enough).
        """
        del tracer
        return self._produce(store, meter)

    def _filtered_batches(
        self, batches: Iterator[Batch], store: TripleStore
    ) -> Iterator[Batch]:
        """Apply FILTERs batch-wise with per-filter verdict caching.

        Filter expressions are deterministic functions of their decoded
        variables, so the effective boolean value is cached keyed by the
        tuple of relevant slot IDs — repeated values (a join fan-out, a
        low-cardinality column) skip decode and evaluation entirely.
        """
        decode = store.decode_id
        compiled: List[_CompiledFilter] = [
            (
                expr,
                tuple(
                    (name, self.slot_of[name])
                    for name in expr.variables()
                    if name in self.slot_of
                ),
            )
            for expr in self.filters
        ]
        caches: List[Dict[Tuple, bool]] = [{} for _ in compiled]
        for batch in batches:
            keep: List[int] = []
            for index, row in enumerate(batch.iter_rows()):
                passed = True
                for (expr, slots), cache in zip(compiled, caches):
                    key = tuple(row[slot] for _, slot in slots)
                    verdict = cache.get(key)
                    if verdict is None:
                        binding = {
                            name: decode(row[slot])
                            for name, slot in slots
                            if row[slot] is not None
                        }
                        try:
                            verdict = effective_boolean_value(
                                evaluate_expression(expr, binding)
                            )
                        except ExpressionError:
                            verdict = False  # erroring filters drop the row
                        cache[key] = verdict
                    if not verdict:
                        passed = False
                        break
                if passed:
                    keep.append(index)
            if not keep:
                continue
            if len(keep) == batch.length:
                yield batch
            else:
                yield Batch(
                    tuple(
                        array("q", (column[i] for i in keep))
                        for column in batch.columns
                    ),
                    len(keep),
                    batch.has_unbound,
                )

    def _filtered(self, rows: Iterator[IdRow], store: TripleStore) -> Iterator[IdRow]:
        decode = store.decode_id
        compiled: List[_CompiledFilter] = [
            (
                expr,
                tuple(
                    (name, self.slot_of[name])
                    for name in expr.variables()
                    if name in self.slot_of
                ),
            )
            for expr in self.filters
        ]
        for row in rows:
            for expr, slots in compiled:
                binding = {
                    name: decode(row[slot])
                    for name, slot in slots
                    if row[slot] is not None
                }
                try:
                    if not effective_boolean_value(evaluate_expression(expr, binding)):
                        break
                except ExpressionError:
                    break  # erroring filters drop the row, per the spec
            else:
                yield row

    # -- display -------------------------------------------------------

    def label(self) -> str:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        return ()


def _pattern_text(pattern: TriplePattern) -> str:
    return " ".join(term.n3() for term in pattern.as_tuple())


class ScanNode(PlanNode):
    """Stream one triple pattern off the backend index."""

    def __init__(self, store: TripleStore, pattern: TriplePattern, est_rows: int) -> None:
        self.pattern = pattern
        encoded = store.encode_pattern(pattern)
        probe: List[Optional[int]] = [None, None, None]
        out: List[Tuple[int, str]] = []
        checks: List[Tuple[int, int]] = []
        first_at: Dict[str, int] = {}
        for position, entry in enumerate(encoded):
            if isinstance(entry, str):
                if entry in first_at:
                    checks.append((first_at[entry], position))
                else:
                    first_at[entry] = position
                    out.append((position, entry))
            else:
                probe[position] = entry
        self.probe: Tuple[Optional[int], Optional[int], Optional[int]] = tuple(probe)  # type: ignore[assignment]
        self.out_positions = tuple(position for position, _ in out)
        self.checks = tuple(checks)
        super().__init__(tuple(name for _, name in out), est_rows)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        s, p, o = self.probe
        positions = self.out_positions
        checks = self.checks
        rows = store.match_ids(s, p, o, meter)
        # Specialized projections: this is the innermost loop of every
        # plan, and a generator-expression tuple per row doubles its
        # cost.  The repeated-variable checks are folded into the same
        # loops — an interposed filtering generator would re-route the
        # 1/2-column shapes through an extra frame per row.
        if len(positions) == 1:
            a = positions[0]
            if checks:
                for row in rows:
                    if all(row[x] == row[y] for x, y in checks):
                        yield (row[a],)
            else:
                for row in rows:
                    yield (row[a],)
        elif len(positions) == 2:
            a, b = positions
            if checks:
                for row in rows:
                    if all(row[x] == row[y] for x, y in checks):
                        yield (row[a], row[b])
            else:
                for row in rows:
                    yield (row[a], row[b])
        elif checks:
            for row in rows:
                if all(row[x] == row[y] for x, y in checks):
                    yield row
        else:
            yield from rows

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        s, p, o = self.probe
        if not self.out_positions:
            # Fully concrete pattern (existence check): the planner never
            # builds this shape, but stay correct if constructed directly.
            yield from PlanNode._produce_batches(
                self, store, meter, batch_size, tracer
            )
            return
        fetch, pairs = self._fetch_positions()
        yield from self._project_batches(
            store.match_columns(s, p, o, fetch, meter, batch_size), pairs
        )

    def _fetch_positions(self) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
        """The column positions to fetch and the equality pairs to check.

        Without repeated variables this is just ``out_positions``; with
        them, the duplicate positions are fetched too (to filter
        column-wise) and projected away by :meth:`_project_batches`.
        """
        positions = self.out_positions
        if not self.checks:
            return positions, ()
        fetch = positions + tuple(dup for _, dup in self.checks)
        pairs = tuple(
            (fetch.index(first), fetch.index(dup)) for first, dup in self.checks
        )
        return fetch, pairs

    def _project_batches(
        self, columns_iter, pairs: Tuple[Tuple[int, int], ...]
    ) -> Iterator[Batch]:
        """Raw column batches → :class:`Batch`, applying repeated-variable
        equality ``pairs`` and projecting the duplicate columns away."""
        if not pairs:
            for columns in columns_iter:
                yield Batch(columns, len(columns[0]))
            return
        width = len(self.out_positions)
        for columns in columns_iter:
            if len(pairs) == 1:
                left, right = pairs[0]
                col_a, col_b = columns[left], columns[right]
                keep = [i for i in range(len(col_a)) if col_a[i] == col_b[i]]
            else:
                keep = [
                    i
                    for i in range(len(columns[0]))
                    if all(columns[a][i] == columns[b][i] for a, b in pairs)
                ]
            if not keep:
                continue
            if len(keep) == len(columns[0]):
                yield Batch(columns[:width], len(keep))
            else:
                yield Batch(
                    tuple(
                        array("q", (column[i] for i in keep))
                        for column in columns[:width]
                    ),
                    len(keep),
                )

    def label(self) -> str:
        return f"Scan({_pattern_text(self.pattern)})"


class ShardScanNode(ScanNode):
    """Scatter-gather scan over a :class:`ShardedBackend`'s shards.

    Functionally identical to :class:`ScanNode` on a sharded store — the
    backend's own ``match_columns`` already concatenates shard streams —
    but plan-visible: the label renders the fan-out (``xK/N`` shards
    touched) and the batch path streams shard by shard, recording one
    ``shard-scan`` child span per shard with its actual row count, so
    EXPLAIN ANALYZE shows how scatter-gather spread the work.

    A concrete subject routes to exactly one shard (``fan_out == 1``);
    any wildcard-subject shape touches all of them.  The row-wise
    pipeline (``rows_tuple``) goes through the inherited ``_produce``,
    whose ``store.match_ids`` call hits the same shards in the same
    order — batch/tuple parity is preserved.
    """

    def __init__(
        self, store: TripleStore, pattern: TriplePattern, est_rows: int
    ) -> None:
        super().__init__(store, pattern, est_rows)
        backend = store.backend
        self.n_shards = getattr(backend, "n_shards", 1)
        self.fan_out = 1 if self.probe[0] is not None else self.n_shards

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        if not self.out_positions:
            yield from PlanNode._produce_batches(
                self, store, meter, batch_size, tracer
            )
            return
        s, p, o = self.probe
        if NO_ID in (s, p, o):
            return
        backend = store.backend
        shards = getattr(backend, "shards", None)
        if shards is None:
            # Planned against a sharded store, executed against a plain
            # one (plan objects can outlive a store swap): degrade to the
            # ordinary scan rather than failing.
            yield from ScanNode._produce_batches(
                self, store, meter, batch_size, tracer
            )
            return
        if s is not None:
            index = backend.shard_of(s)
            targets = [(index, shards[index])]
        else:
            targets = list(enumerate(shards))
        fetch, pairs = self._fetch_positions()
        charge = meter.charge if meter is not None else None
        for index, shard in targets:
            columns_iter = shard.match_columns(s, p, o, fetch, batch_size)
            if charge is not None:
                columns_iter = _charged_columns(columns_iter, charge)
            rows = 0
            for batch in self._project_batches(columns_iter, pairs):
                rows += batch.length
                yield batch
            if tracer is not None:
                tracer.event("shard-scan", shard=index, rows=rows)

    def label(self) -> str:
        return (
            f"ShardScan({_pattern_text(self.pattern)} "
            f"x{self.fan_out}/{self.n_shards})"
        )


def _charged_columns(columns_iter, charge) -> Iterator:
    """Charge the meter per fetched candidate, exactly like
    ``TripleStore.match_columns`` does — cost parity with the unsharded
    scan is what keeps budget-abort behaviour backend-independent."""
    for columns in columns_iter:
        charge(len(columns[0]))
        yield columns


class HashJoinNode(PlanNode):
    """Hash the right input on the shared variables, stream the left.

    Both inputs are scanned exactly once; each emitted row charges the
    cost meter one unit so budgeted endpoints retain their abort
    behaviour on explosive joins.
    """

    def __init__(self, left: PlanNode, right: PlanNode, keys: Tuple[str, ...], est_rows: int) -> None:
        self.left = left
        self.right = right
        self.keys = keys
        self.left_key_slots = tuple(left.slot_of[name] for name in keys)
        self.right_key_slots = tuple(right.slot_of[name] for name in keys)
        residual = [name for name in right.variables if name not in keys]
        self.right_residual_slots = tuple(right.slot_of[name] for name in residual)
        super().__init__(left.variables + tuple(residual), est_rows)
        self.maybe_unbound = left.maybe_unbound | right.maybe_unbound

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        # Single shared variable is the overwhelmingly common join shape
        # (subject stars, object-subject chains); key on the bare int
        # instead of a 1-tuple to keep build and probe at one dict op.
        single = len(self.left_key_slots) == 1
        rkeys = self.right_key_slots
        rres = self.right_residual_slots
        lkey = self.left_key_slots[0] if single else None
        lkeys = self.left_key_slots
        charge = meter.charge if meter is not None else None
        if not rres:
            # Semi-join: the build side adds no variables, so a bucket is
            # just a multiplicity and no output tuple is re-allocated.
            counts: Dict[object, int] = {}
            for row in self.right.rows_tuple(store, meter):
                key = row[rkeys[0]] if single else tuple(row[i] for i in rkeys)
                counts[key] = counts.get(key, 0) + 1
            cget = counts.get
            for lrow in self.left.rows_tuple(store, meter):
                n = cget(lrow[lkey] if single else tuple(lrow[i] for i in lkeys))
                if n is None:
                    continue
                if charge is not None:
                    charge(n)
                if n == 1:
                    yield lrow
                else:
                    for _ in range(n):
                        yield lrow
            return
        table: Dict[object, List[IdRow]] = {}
        rres0 = rres[0] if len(rres) == 1 else None
        for row in self.right.rows_tuple(store, meter):
            key = row[rkeys[0]] if single else tuple(row[i] for i in rkeys)
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append(
                (row[rres0],) if rres0 is not None else tuple(row[i] for i in rres)
            )
        get = table.get
        for lrow in self.left.rows_tuple(store, meter):
            key = lrow[lkey] if single else tuple(lrow[i] for i in lkeys)
            bucket = get(key)
            if bucket is None:
                continue
            if charge is not None:
                charge(len(bucket))
            for residual in bucket:
                yield lrow + residual

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        single = len(self.left_key_slots) == 1
        rkeys = self.right_key_slots
        rres = self.right_residual_slots
        lkeys = self.left_key_slots
        lkey = lkeys[0] if single else None
        charge = meter.charge if meter is not None else None
        if not rres:
            # Semi-join: build a key -> multiplicity table column-wise,
            # then emit probe batches through a selection vector.  With
            # unique single keys the table degenerates to a set and the
            # all-match probe runs entirely in C.
            if single:
                rcols = []
                total = 0
                for rbatch in self.right.batches(store, meter, batch_size, tracer):
                    rcols.append(rbatch.columns[rkeys[0]])
                    total += rbatch.length
                unique = set(chain.from_iterable(rcols))
                if len(unique) == total:
                    contains = unique.__contains__
                    for lbatch in self.left.batches(store, meter, batch_size, tracer):
                        flags = list(map(contains, lbatch.columns[lkey]))
                        if all(flags):
                            if charge is not None:
                                charge(lbatch.length)
                            yield lbatch
                            continue
                        selection = [i for i, hit in enumerate(flags) if hit]
                        if not selection:
                            continue
                        if charge is not None:
                            charge(len(selection))
                        yield Batch(
                            tuple(
                                array("q", map(column.__getitem__, selection))
                                for column in lbatch.columns
                            ),
                            len(selection),
                            lbatch.has_unbound,
                        )
                    return
                counts: Dict[object, int] = {}
                for col in rcols:
                    for key in col:
                        counts[key] = counts.get(key, 0) + 1
            else:
                counts = {}
                for rbatch in self.right.batches(store, meter, batch_size, tracer):
                    for row in rbatch.iter_raw():
                        key = tuple(row[i] for i in rkeys)
                        counts[key] = counts.get(key, 0) + 1
            cget = counts.get
            for lbatch in self.left.batches(store, meter, batch_size, tracer):
                if single:
                    # dict.get mapped over the key column: the whole
                    # lookup pass runs in C.
                    matches = map(cget, lbatch.columns[lkey])
                else:
                    matches = (
                        cget(tuple(row[i] for i in lkeys))
                        for row in lbatch.iter_raw()
                    )
                selection: List[int] = []
                append = selection.append
                extend = selection.extend
                identity = True
                for index, count in enumerate(matches):
                    if count is None:
                        identity = False
                    elif count == 1:
                        append(index)
                    else:
                        identity = False
                        extend([index] * count)
                if not selection:
                    continue
                if charge is not None:
                    charge(len(selection))
                if identity:
                    yield lbatch
                else:
                    yield Batch(
                        tuple(
                            array("q", map(column.__getitem__, selection))
                            for column in lbatch.columns
                        ),
                        len(selection),
                        lbatch.has_unbound,
                    )
            return
        rres0 = rres[0] if len(rres) == 1 else None
        right_unbound = False
        if (
            single
            and rres0 is not None
            and self.left.est_rows * 4 <= self.right.est_rows
        ):
            # The accumulated left side is much smaller than the probe
            # side (4x keeps star hops — near-equal sides with reference
            # pass-through on the left — out of this tier): build from
            # it and stream the probe side.  Chain hops compile this way
            # (small unique dimension joined against a large fact scan),
            # and when the left key is functional a full-match probe
            # batch passes through by reference — the key and residual
            # probe columns are reused as-is and the left residual is a
            # single C-built lookup column, so no gathers happen at all.
            width = len(self.left.variables)
            left_cols = [array("q") for _ in range(width)]
            left_unbound = False
            for lbatch in self.left.batches(store, meter, batch_size, tracer):
                left_unbound = left_unbound or lbatch.has_unbound
                for slot, column in enumerate(lbatch.columns):
                    left_cols[slot].extend(column)
            left_key_col = left_cols[lkey]
            nleft = len(left_key_col)
            index_of: Dict[int, int] = dict(zip(left_key_col, range(nleft)))
            if len(index_of) == nleft:
                lres_slots = [slot for slot in range(width) if slot != lkey]
                # With one left residual the index degenerates to a
                # key -> value dict and the probe pass fills the output
                # column directly; wider left sides gather by row index.
                scalar_res = (
                    dict(zip(left_key_col, left_cols[lres_slots[0]]))
                    if len(lres_slots) == 1
                    else None
                )
                iget = index_of.get
                rkey_slot = rkeys[0]
                for rbatch in self.right.batches(store, meter, batch_size, tracer):
                    out_unbound = left_unbound or rbatch.has_unbound
                    rkey_col = rbatch.columns[rkey_slot]
                    if scalar_res is not None:
                        vals = list(map(scalar_res.get, rkey_col))
                        if None not in vals:
                            out_len = rbatch.length
                            rcols = rbatch.columns
                            res_out = [array("q", vals)]
                        else:
                            keep = [
                                index
                                for index, value in enumerate(vals)
                                if value is not None
                            ]
                            if not keep:
                                continue
                            out_len = len(keep)
                            rcols = tuple(
                                array("q", map(column.__getitem__, keep))
                                for column in rbatch.columns
                            )
                            res_out = [
                                array(
                                    "q",
                                    [v for v in vals if v is not None],
                                )
                            ]
                    else:
                        sel = list(map(iget, rkey_col))
                        if None in sel:
                            keep = [
                                index
                                for index, row_idx in enumerate(sel)
                                if row_idx is not None
                            ]
                            if not keep:
                                continue
                            sel = [
                                row_idx
                                for row_idx in sel
                                if row_idx is not None
                            ]
                            rcols = tuple(
                                array("q", map(column.__getitem__, keep))
                                for column in rbatch.columns
                            )
                        else:
                            rcols = rbatch.columns
                        out_len = len(sel)
                        res_out = [
                            array(
                                "q",
                                map(left_cols[slot].__getitem__, sel),
                            )
                            for slot in lres_slots
                        ]
                    # Output slot order: left variables (key comes from
                    # the probe column — equal by the join condition),
                    # then the right residual.
                    res_iter = iter(res_out)
                    out = [
                        rcols[rkey_slot] if slot == lkey else next(res_iter)
                        for slot in range(width)
                    ]
                    out.append(rcols[rres0])
                    if charge is not None:
                        charge(out_len)
                    yield Batch(tuple(out), out_len, out_unbound)
                return
            # Left keys repeat: collect the probe side; a functional
            # probe side joins through a scalar dict in one pass over
            # the materialized left, anything else expands through
            # int-list buckets.
            rkey_cols = []
            rres_cols = []
            total = 0
            for rbatch in self.right.batches(store, meter, batch_size, tracer):
                right_unbound = right_unbound or rbatch.has_unbound
                rkey_cols.append(rbatch.columns[rkeys[0]])
                rres_cols.append(rbatch.columns[rres0])
                total += rbatch.length
            scalar = dict(
                zip(chain.from_iterable(rkey_cols), chain.from_iterable(rres_cols))
            )
            if len(scalar) == total:
                matches = list(map(scalar.get, left_key_col))
                selection = [
                    index
                    for index, value in enumerate(matches)
                    if value is not None
                ]
                if not selection:
                    return
                res_vals = [value for value in matches if value is not None]
                if charge is not None:
                    charge(len(selection))
                yield Batch(
                    tuple(
                        array("q", map(column.__getitem__, selection))
                        for column in left_cols
                    )
                    + (array("q", res_vals),),
                    len(selection),
                    left_unbound or right_unbound,
                )
                return
            flat: Dict[int, List[int]] = {}
            setdefault = flat.setdefault
            for key_col, res_col in zip(rkey_cols, rres_cols):
                for key, value in zip(key_col, res_col):
                    setdefault(key, []).append(value)
            fget = flat.get
            selection = []
            append = selection.append
            extend = selection.extend
            res_buf: List[int] = []
            res_append = res_buf.append
            res_extend = res_buf.extend
            for index, bucket in enumerate(map(fget, left_key_col)):
                if bucket is None:
                    continue
                if len(bucket) == 1:
                    append(index)
                    res_append(bucket[0])
                else:
                    extend([index] * len(bucket))
                    res_extend(bucket)
            if not selection:
                return
            if charge is not None:
                charge(len(selection))
            yield Batch(
                tuple(
                    array("q", map(column.__getitem__, selection))
                    for column in left_cols
                )
                + (array("q", res_buf),),
                len(selection),
                left_unbound or right_unbound,
            )
            return
        if single and rres0 is not None:
            # One key column, one residual column: the dominant
            # star/chain shape.  Collect the build side's columns, then
            # try the unique-key plan: ``dict(zip(keys, values))`` is a
            # single C pass, and when it loses no pairs the key is
            # functional, so every probe maps to at most one residual.
            rkey_cols: List[array] = []
            rres_cols: List[array] = []
            total = 0
            for rbatch in self.right.batches(store, meter, batch_size, tracer):
                right_unbound = right_unbound or rbatch.has_unbound
                rkey_cols.append(rbatch.columns[rkeys[0]])
                rres_cols.append(rbatch.columns[rres0])
                total += rbatch.length
            scalar: Optional[Dict[int, int]] = dict(
                zip(chain.from_iterable(rkey_cols), chain.from_iterable(rres_cols))
            )
            if len(scalar) == total:
                fget = scalar.get
                for lbatch in self.left.batches(store, meter, batch_size, tracer):
                    matches = list(map(fget, lbatch.columns[lkey]))
                    if None not in matches:
                        # Every left row joins exactly once: the output
                        # is the left batch plus one C-built residual
                        # column — no per-row Python at all.
                        if charge is not None:
                            charge(lbatch.length)
                        yield Batch(
                            lbatch.columns + (array("q", matches),),
                            lbatch.length,
                            lbatch.has_unbound or right_unbound,
                        )
                        continue
                    selection = [
                        index
                        for index, value in enumerate(matches)
                        if value is not None
                    ]
                    if not selection:
                        continue
                    res_buf = [value for value in matches if value is not None]
                    if charge is not None:
                        charge(len(selection))
                    yield Batch(
                        tuple(
                            array("q", map(column.__getitem__, selection))
                            for column in lbatch.columns
                        )
                        + (array("q", res_buf),),
                        len(selection),
                        lbatch.has_unbound or right_unbound,
                    )
                return
            # Duplicate right keys.  Materialize the left side and try
            # the inverted join: index the left rows by key (unique in
            # every 1:N chain hop) and drive the probe from the right
            # columns, so lookups and gathers stay C-level passes.
            width = len(self.left.variables)
            left_cols = [array("q") for _ in range(width)]
            left_unbound = False
            for lbatch in self.left.batches(store, meter, batch_size, tracer):
                left_unbound = left_unbound or lbatch.has_unbound
                for slot, column in enumerate(lbatch.columns):
                    left_cols[slot].extend(column)
            left_key_col = left_cols[lkey]
            index_of: Dict[int, int] = dict(
                zip(left_key_col, range(len(left_key_col)))
            )
            if len(index_of) == len(left_key_col):
                iget = index_of.get
                out_unbound = left_unbound or right_unbound
                for rkey_col, rres_col in zip(rkey_cols, rres_cols):
                    sel = list(map(iget, rkey_col))
                    if None in sel:
                        keep_res = array(
                            "q",
                            [
                                value
                                for row_idx, value in zip(sel, rres_col)
                                if row_idx is not None
                            ],
                        )
                        sel = [row_idx for row_idx in sel if row_idx is not None]
                        if not sel:
                            continue
                        res_col = keep_res
                    else:
                        res_col = rres_col
                    if charge is not None:
                        charge(len(sel))
                    yield Batch(
                        tuple(
                            array("q", map(column.__getitem__, sel))
                            for column in left_cols
                        )
                        + (res_col,),
                        len(sel),
                        out_unbound,
                    )
                return
            # Duplicate keys on both sides: int-list buckets, probed
            # over the already-materialized left columns in one pass.
            flat: Dict[int, List[int]] = {}
            setdefault = flat.setdefault
            for key_col, res_col in zip(rkey_cols, rres_cols):
                for key, value in zip(key_col, res_col):
                    setdefault(key, []).append(value)
            fget = flat.get
            selection = []
            append = selection.append
            extend = selection.extend
            res_buf = []
            res_append = res_buf.append
            res_extend = res_buf.extend
            for index, bucket in enumerate(map(fget, left_key_col)):
                if bucket is None:
                    continue
                if len(bucket) == 1:
                    append(index)
                    res_append(bucket[0])
                else:
                    extend([index] * len(bucket))
                    res_extend(bucket)
            if not selection:
                return
            if charge is not None:
                charge(len(selection))
            yield Batch(
                tuple(
                    array("q", map(column.__getitem__, selection))
                    for column in left_cols
                )
                + (array("q", res_buf),),
                len(selection),
                left_unbound or right_unbound,
            )
            return
        # General shape: buckets of residual tuples.
        table: Dict[object, List[Tuple[int, ...]]] = {}
        for rbatch in self.right.batches(store, meter, batch_size, tracer):
            right_unbound = right_unbound or rbatch.has_unbound
            for row in rbatch.iter_raw():
                key = row[rkeys[0]] if single else tuple(row[i] for i in rkeys)
                bucket = table.get(key)
                if bucket is None:
                    table[key] = bucket = []
                bucket.append(
                    (row[rres0],)
                    if rres0 is not None
                    else tuple(row[i] for i in rres)
                )
        get = table.get
        for lbatch in self.left.batches(store, meter, batch_size, tracer):
            if single:
                buckets = map(get, lbatch.columns[lkey])
            else:
                buckets = (
                    get(tuple(row[i] for i in lkeys))
                    for row in lbatch.iter_raw()
                )
            selection = []
            residual_columns: List[List[int]] = [[] for _ in rres]
            for index, bucket in enumerate(buckets):
                if bucket is None:
                    continue
                if len(bucket) == 1:
                    selection.append(index)
                    for slot, cell in enumerate(bucket[0]):
                        residual_columns[slot].append(cell)
                else:
                    selection.extend([index] * len(bucket))
                    for residual in bucket:
                        for slot, cell in enumerate(residual):
                            residual_columns[slot].append(cell)
            if not selection:
                continue
            if charge is not None:
                charge(len(selection))
            yield Batch(
                tuple(
                    array("q", map(column.__getitem__, selection))
                    for column in lbatch.columns
                )
                + tuple(array("q", buf) for buf in residual_columns),
                len(selection),
                lbatch.has_unbound or right_unbound,
            )

    def label(self) -> str:
        keys = ", ".join(f"?{name}" for name in self.keys)
        return f"HashJoin(on {keys})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


class BindJoinNode(PlanNode):
    """Probe the store once per left row with shared variables bound."""

    def __init__(
        self,
        store: TripleStore,
        left: PlanNode,
        pattern: TriplePattern,
        est_rows: int,
    ) -> None:
        self.left = left
        self.pattern = pattern
        encoded = store.encode_pattern(pattern)
        # Probe spec per position: a constant ID, a left slot, or free.
        spec: List[Tuple[str, Optional[int]]] = []
        out: List[Tuple[int, str]] = []
        checks: List[Tuple[int, int]] = []
        first_at: Dict[str, int] = {}
        for position, entry in enumerate(encoded):
            if isinstance(entry, str):
                if entry in left.slot_of:
                    spec.append(("left", left.slot_of[entry]))
                elif entry in first_at:
                    spec.append(("free", None))
                    checks.append((first_at[entry], position))
                else:
                    first_at[entry] = position
                    spec.append(("free", None))
                    out.append((position, entry))
            else:
                spec.append(("const", entry))
        self.spec = tuple(spec)
        self.out_positions = tuple(position for position, _ in out)
        self.checks = tuple(checks)
        super().__init__(
            left.variables + tuple(name for _, name in out), est_rows
        )
        self.maybe_unbound = left.maybe_unbound

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        (s_kind, s_val), (p_kind, p_val), (o_kind, o_val) = self.spec
        positions = self.out_positions
        checks = self.checks
        match_ids = store.match_ids
        for lrow in self.left.rows_tuple(store, meter):
            s = s_val if s_kind == "const" else lrow[s_val] if s_kind == "left" else None
            p = p_val if p_kind == "const" else lrow[p_val] if p_kind == "left" else None
            o = o_val if o_kind == "const" else lrow[o_val] if o_kind == "left" else None
            for row in match_ids(s, p, o, meter):
                if checks and not all(row[a] == row[b] for a, b in checks):
                    continue
                yield lrow + tuple(row[i] for i in positions)

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        # Probing stays per left row (that is the operator's nature) but
        # output rows accumulate column-wise and flush as full batches.
        (s_kind, s_val), (p_kind, p_val), (o_kind, o_val) = self.spec
        positions = self.out_positions
        checks = self.checks
        match_ids = store.match_ids
        n_left = len(self.left.variables)
        width = n_left + len(positions)
        buffers: List[List[int]] = [[] for _ in range(width)]
        length = 0
        any_unbound = False
        for lbatch in self.left.batches(store, meter, batch_size, tracer):
            any_unbound = any_unbound or lbatch.has_unbound
            for lrow in lbatch.iter_raw():
                s = s_val if s_kind == "const" else lrow[s_val] if s_kind == "left" else None
                p = p_val if p_kind == "const" else lrow[p_val] if p_kind == "left" else None
                o = o_val if o_kind == "const" else lrow[o_val] if o_kind == "left" else None
                for row in match_ids(s, p, o, meter):
                    if checks and not all(row[a] == row[b] for a, b in checks):
                        continue
                    for slot in range(n_left):
                        buffers[slot].append(lrow[slot])
                    for offset, position in enumerate(positions):
                        buffers[n_left + offset].append(row[position])
                    length += 1
                if length >= batch_size:
                    yield Batch(
                        tuple(array("q", buf) for buf in buffers),
                        length,
                        any_unbound,
                    )
                    buffers = [[] for _ in range(width)]
                    length = 0
        if length:
            yield Batch(
                tuple(array("q", buf) for buf in buffers), length, any_unbound
            )

    def label(self) -> str:
        return f"BindJoin({_pattern_text(self.pattern)})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left,)


class ValuesScanNode(PlanNode):
    """An inline VALUES table as a leaf operator.

    Terms are translated to dictionary IDs at construction so rows live
    in the same ID space as every other operator.  By default the
    translation is a read-only ``lookup`` — the shared local store must
    never be mutated (or, on SQLite, written) from the query path, and
    ``TermDictionary.encode`` is not safe under the HTTP server's
    concurrent planning.  A term the store has never seen sets
    ``has_unknown_terms`` and the local planner falls back to the
    term-space evaluator, which handles such rows exactly.

    The federation passes ``intern=True``: its mediator store is fresh
    and private to one query execution, so interning remote/inline
    terms there is safe and gives every unknown term a real ID.
    ``None`` cells (UNDEF) stay ``None``.
    """

    def __init__(self, store: TripleStore, names: Tuple[str, ...],
                 term_rows: Sequence[Tuple[object, ...]],
                 intern: bool = False) -> None:
        translate = store.dictionary.encode if intern else store.term_id
        self.has_unknown_terms = False
        id_rows: List[IdRow] = []
        for row in term_rows:
            cells: List[Optional[int]] = []
            for term in row:
                if term is None:
                    cells.append(None)
                    continue
                term_id = translate(term)
                if term_id == NO_ID:
                    self.has_unknown_terms = True
                cells.append(term_id)
            id_rows.append(tuple(cells))
        self.id_rows = id_rows
        super().__init__(tuple(names), len(self.id_rows))
        self.maybe_unbound = frozenset(
            name for position, name in enumerate(names)
            if any(row[position] is None for row in self.id_rows)
        )

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        charge = meter.charge if meter is not None else None
        for row in self.id_rows:
            if charge is not None:
                charge(1)
            yield row

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        charge = meter.charge if meter is not None else None
        width = len(self.variables)
        id_rows = self.id_rows
        for start in range(0, len(id_rows), batch_size):
            chunk = id_rows[start : start + batch_size]
            if charge is not None:
                charge(len(chunk))
            if width == 0:
                yield Batch((), len(chunk))
                continue
            has_unbound = False
            buffers: List[array] = []
            for slot in range(width):
                column = array("q")
                for row in chunk:
                    cell = row[slot]
                    if cell is None:
                        cell = UNBOUND
                        has_unbound = True
                    column.append(cell)
                buffers.append(column)
            yield Batch(tuple(buffers), len(chunk), has_unbound)

    def label(self) -> str:
        if not self.variables:
            return "Unit()" if self.id_rows else "EmptyTable()"
        heads = " ".join(f"?{name}" for name in self.variables)
        return f"ValuesScan({heads} x{len(self.id_rows)})"


class UnionNode(PlanNode):
    """Concatenate branch streams over the union of their variables.

    Slots a branch does not bind are padded with ``None`` and recorded
    in ``maybe_unbound`` so the planner never hash-joins on them.
    """

    def __init__(self, branches: Sequence[PlanNode]) -> None:
        names: List[str] = []
        for branch in branches:
            for name in branch.variables:
                if name not in names:
                    names.append(name)
        super().__init__(tuple(names), sum(branch.est_rows for branch in branches))
        self.branches = list(branches)
        self._maps = [
            tuple(branch.slot_of.get(name) for name in names)
            for branch in branches
        ]
        unbound = set()
        for branch in branches:
            unbound |= set(branch.maybe_unbound)
            unbound |= {name for name in names if name not in branch.slot_of}
        self.maybe_unbound = frozenset(unbound)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        for branch, mapping in zip(self.branches, self._maps):
            for row in branch.rows_tuple(store, meter):
                yield tuple(None if slot is None else row[slot] for slot in mapping)

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        # Remapping a batch is pure column shuffling: existing columns
        # are passed through by reference, missing slots get a shared
        # UNBOUND pad column of the right length.
        for branch, mapping in zip(self.branches, self._maps):
            pad: Optional[array] = None
            for batch in branch.batches(store, meter, batch_size, tracer):
                columns: List[array] = []
                has_unbound = batch.has_unbound
                for slot in mapping:
                    if slot is None:
                        if pad is None or len(pad) != batch.length:
                            pad = array("q", [UNBOUND]) * batch.length
                        columns.append(pad)
                        has_unbound = True
                    else:
                        columns.append(batch.columns[slot])
                yield Batch(tuple(columns), batch.length, has_unbound)

    def label(self) -> str:
        return f"Union[{len(self.branches)}]"

    def children(self) -> Sequence[PlanNode]:
        return tuple(self.branches)


class MinusNode(PlanNode):
    """Anti-join on IDs implementing SPARQL MINUS compatibility.

    A left row is dropped when some right row agrees with it on at
    least one shared variable bound on both sides and disagrees on
    none.  With every shared slot certainly bound on both sides this
    is one set-membership test per row; rows with ``None`` cells fall
    back to a compatibility scan.
    """

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        shared = tuple(name for name in right.variables if name in left.slot_of)
        self.left = left
        self.right = right
        self.shared = shared
        self.left_slots = tuple(left.slot_of[name] for name in shared)
        self.right_slots = tuple(right.slot_of[name] for name in shared)
        super().__init__(left.variables, left.est_rows)
        self.maybe_unbound = left.maybe_unbound

    @staticmethod
    def _compatible(left_key: IdRow, right_key: IdRow) -> bool:
        """True when the keys share >=1 bound position and clash on none."""
        common = False
        for a, b in zip(left_key, right_key):
            if a is None or b is None:
                continue
            if a != b:
                return False
            common = True
        return common

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        if not self.shared:
            # Disjoint domains: the subtraction removes nothing (the
            # normalizer usually rewrites this away already).
            yield from self.left.rows_tuple(store, meter)
            return
        exact: set = set()
        loose: List[IdRow] = []
        for row in self.right.rows_tuple(store, meter):
            key = tuple(row[slot] for slot in self.right_slots)
            if None in key:
                loose.append(key)
            else:
                exact.add(key)
        left_slots = self.left_slots
        for lrow in self.left.rows_tuple(store, meter):
            lkey = tuple(lrow[slot] for slot in left_slots)
            if None not in lkey:
                if lkey in exact:
                    continue
                if loose and any(self._compatible(lkey, rkey) for rkey in loose):
                    continue
            else:
                if any(self._compatible(lkey, rkey) for rkey in exact) or any(
                    self._compatible(lkey, rkey) for rkey in loose
                ):
                    continue
            yield lrow

    def _produce_batches(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        batch_size: int,
        tracer=None,
    ) -> Iterator[Batch]:
        if not self.shared:
            yield from self.left.batches(store, meter, batch_size, tracer)
            return
        exact: set = set()
        loose: List[IdRow] = []
        right_slots = self.right_slots
        for rbatch in self.right.batches(store, meter, batch_size, tracer):
            if rbatch.has_unbound:
                for row in rbatch.iter_rows():
                    key = tuple(row[slot] for slot in right_slots)
                    if None in key:
                        loose.append(key)
                    else:
                        exact.add(key)
            else:
                for row in rbatch.iter_raw():
                    exact.add(tuple(row[slot] for slot in right_slots))
        left_slots = self.left_slots
        compatible = self._compatible
        for lbatch in self.left.batches(store, meter, batch_size, tracer):
            keep: List[int] = []
            for index, lrow in enumerate(lbatch.iter_rows()):
                lkey = tuple(lrow[slot] for slot in left_slots)
                if None not in lkey:
                    if lkey in exact:
                        continue
                    if loose and any(compatible(lkey, rkey) for rkey in loose):
                        continue
                else:
                    if any(compatible(lkey, rkey) for rkey in exact) or any(
                        compatible(lkey, rkey) for rkey in loose
                    ):
                        continue
                keep.append(index)
            if not keep:
                continue
            if len(keep) == lbatch.length:
                yield lbatch
            else:
                yield Batch(
                    tuple(
                        array("q", (column[i] for i in keep))
                        for column in lbatch.columns
                    ),
                    len(keep),
                    lbatch.has_unbound,
                )

    def label(self) -> str:
        keys = ", ".join(f"?{name}" for name in self.shared) or "-"
        return f"Minus(on {keys})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


class CompatJoinNode(PlanNode):
    """Nested-loop join with full SPARQL compatibility semantics.

    Used where a shared variable may be unbound on either side — a hash
    join's equality keying would treat "unbound" as a value, but SPARQL
    says an unbound variable is compatible with anything and the merged
    solution takes the bound side's value.  The local planner avoids
    this shape by falling back to the term-space evaluator; the
    federation, which has no backtracking fallback, uses this operator.
    Materializes the right input.
    """

    def __init__(self, left: PlanNode, right: PlanNode, est_rows: int) -> None:
        self.left = left
        self.right = right
        self.shared = tuple(name for name in right.variables if name in left.slot_of)
        self.left_shared_slots = tuple(left.slot_of[name] for name in self.shared)
        self.right_shared_slots = tuple(right.slot_of[name] for name in self.shared)
        residual = [name for name in right.variables if name not in self.shared]
        self.right_residual_slots = tuple(right.slot_of[name] for name in residual)
        super().__init__(left.variables + tuple(residual), est_rows)
        self.maybe_unbound = left.maybe_unbound | right.maybe_unbound

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        right_rows = list(self.right.rows_tuple(store, meter))
        charge = meter.charge if meter is not None else None
        for lrow in self.left.rows_tuple(store, meter):
            for rrow in right_rows:
                merged = _merge_shared(
                    lrow, rrow, self.left_shared_slots, self.right_shared_slots
                )
                if merged is None:
                    continue
                if charge is not None:
                    charge(1)
                yield merged + tuple(rrow[slot] for slot in self.right_residual_slots)

    def label(self) -> str:
        keys = ", ".join(f"?{name}" for name in self.shared) or "-"
        return f"CompatJoin(on {keys})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


class LeftJoinNode(CompatJoinNode):
    """Left outer variant of :class:`CompatJoinNode` (OPTIONAL).

    A left row with no compatible right row passes through with the
    right-only slots unbound.  Used by the federation for OPTIONALs
    nested inside UNION/MINUS branches, where no per-solution
    correlation point exists — the right side is evaluated once,
    independently, per the SPARQL LeftJoin algebra.
    """

    def __init__(self, left: PlanNode, right: PlanNode, est_rows: int) -> None:
        super().__init__(left, right, est_rows)
        residual = self.variables[len(left.variables):]
        self.maybe_unbound = self.maybe_unbound | set(residual)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        right_rows = list(self.right.rows_tuple(store, meter))
        charge = meter.charge if meter is not None else None
        pad = (None,) * len(self.right_residual_slots)
        for lrow in self.left.rows_tuple(store, meter):
            matched = False
            for rrow in right_rows:
                merged = _merge_shared(
                    lrow, rrow, self.left_shared_slots, self.right_shared_slots
                )
                if merged is None:
                    continue
                matched = True
                if charge is not None:
                    charge(1)
                yield merged + tuple(rrow[slot] for slot in self.right_residual_slots)
            if not matched:
                yield lrow + pad

    def label(self) -> str:
        keys = ", ".join(f"?{name}" for name in self.shared) or "-"
        return f"LeftJoin(on {keys})"


class RemoteScanNode(PlanNode):
    """Fetch one pattern (or an exclusive group of patterns that share
    a single relevant source) from remote endpoints.

    ``sources`` need only the endpoint query surface (``select``/``ask``
    raising ``EndpointError`` subclasses) — in-process and HTTP-backed
    endpoints mix freely.  Result terms are interned into the executing
    store's dictionary, so the mediator joins them in ID space like any
    local rows.  Rows are deduplicated across sources (two endpoints
    may hold overlapping data).
    """

    def __init__(self, patterns: Sequence[TriplePattern], sources: Sequence,
                 est_rows: int) -> None:
        self.patterns = list(patterns)
        self.sources = list(sources)
        names: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variables():
                if name not in names:
                    names.append(name)
        super().__init__(tuple(names), est_rows)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        return self._fetch(store, meter, None)

    def _batch_rows(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        tracer,
    ) -> Iterator[IdRow]:
        return self._fetch(store, meter, tracer)

    def _fetch(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        tracer,
    ) -> Iterator[IdRow]:
        from ..endpoint.endpoint import EndpointError
        from .serializer import ask_query, select_query

        charge = meter.charge if meter is not None else None
        if not self.variables:
            # Fully ground patterns: a federated existence check.
            probe = ask_query(self.patterns)
            for source in self.sources:
                try:
                    if tracer is None:
                        held = source.ask(probe)
                    else:
                        with tracer.remote_call(source, kind="ask") as span:
                            held = source.ask(probe)
                            if span is not None:
                                span.attrs["held"] = bool(held)
                    if held:
                        if charge is not None:
                            charge(1)
                        yield ()
                        return
                except EndpointError:
                    continue
            return
        query = select_query(self.patterns, distinct=False)
        encode = store.dictionary.encode
        seen: set = set()
        for source in self.sources:
            try:
                if tracer is None:
                    result = source.select(query)
                else:
                    with tracer.remote_call(source, kind="select") as span:
                        result = source.select(query)
                        if span is not None:
                            span.attrs["rows"] = len(result.rows)
            except EndpointError:
                # A failing source cannot veto the others' answers.
                continue
            for row in result.rows:
                ids = tuple(
                    encode(row[name]) if name in row else None
                    for name in self.variables
                )
                if ids in seen:
                    continue
                seen.add(ids)
                if charge is not None:
                    charge(1)
                yield ids

    def label(self) -> str:
        where = " . ".join(_pattern_text(p) for p in self.patterns)
        at = ",".join(getattr(s, "name", "?") for s in self.sources)
        return f"RemoteScan({where} @ {at})"


class RemoteBindJoinNode(PlanNode):
    """Batched bind join against remote endpoints.

    Accumulates up to ``batch_size`` left rows, decodes the variables
    shared with ``pattern``, and ships them to every source as one
    sub-query of the form ``SELECT * WHERE { pattern VALUES (vars)
    { rows } }`` — a single HTTP round-trip per source per batch
    instead of one per binding, which is where federated joins spend
    their time (the FedX "bound join" idea, upgraded from FILTER
    disjunctions to VALUES).  Left rows with an unbound shared slot
    ship ``UNDEF``, preserving compatibility semantics.
    """

    def __init__(self, left: PlanNode, pattern: TriplePattern, sources: Sequence,
                 est_rows: int, batch_size: int = REMOTE_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.left = left
        self.pattern = pattern
        self.sources = list(sources)
        self.batch_size = batch_size
        self.shared = tuple(
            name for name in pattern.variables() if name in left.slot_of
        )
        self.left_key_slots = tuple(left.slot_of[name] for name in self.shared)
        fresh: List[str] = []
        for name in pattern.variables():
            if name not in left.slot_of and name not in fresh:
                fresh.append(name)
        self.fresh = tuple(fresh)
        super().__init__(left.variables + tuple(fresh), est_rows)
        # Shared slots are always bound after the join (the pattern
        # binds them); the rest of the left row keeps its status.
        self.maybe_unbound = left.maybe_unbound - set(self.shared)

    def _produce(self, store: TripleStore, meter: Optional[CostMeter]) -> Iterator[IdRow]:
        return self._stream(store, meter, None)

    def _batch_rows(
        self,
        store: TripleStore,
        meter: Optional[CostMeter],
        tracer,
    ) -> Iterator[IdRow]:
        return self._stream(store, meter, tracer)

    def _stream(self, store: TripleStore, meter: Optional[CostMeter],
                tracer) -> Iterator[IdRow]:
        # Traced executions pull the left side through the batch adapter
        # so the whole subtree appears in the trace; the untraced path
        # keeps the row-wise pull, byte-identical to the seed behaviour.
        left_rows = (
            self.left.rows_tuple(store, meter)
            if tracer is None
            else self.left.rows(store, meter, tracer=tracer)
        )
        batch: List[IdRow] = []
        for lrow in left_rows:
            batch.append(lrow)
            if len(batch) >= self.batch_size:
                yield from self._flush(batch, store, meter, tracer)
                batch = []
        if batch:
            yield from self._flush(batch, store, meter, tracer)

    def _flush(self, batch: List[IdRow], store: TripleStore,
               meter: Optional[CostMeter], tracer=None) -> Iterator[IdRow]:
        from ..endpoint.endpoint import EndpointError
        from .ast_nodes import GraphPattern as AstGroup, Query as AstQuery

        decode = store.decode_id
        encode = store.dictionary.encode
        charge = meter.charge if meter is not None else None

        # Distinct decoded key tuples for the VALUES clause (UNDEF for
        # slots a union branch left unbound).
        term_keys: Dict[Tuple, None] = {}
        for lrow in batch:
            key = tuple(
                None if lrow[slot] is None else decode(lrow[slot])
                for slot in self.left_key_slots
            )
            term_keys.setdefault(key)
        sub_query = AstQuery(
            form="SELECT",
            select_star=True,
            where=AstGroup(
                patterns=[self.pattern],
                values=(
                    [ValuesClause(self.shared, tuple(term_keys))]
                    if self.shared else []
                ),
            ),
        )

        # Fetch once per source, group extensions by their key values.
        exact: Dict[Tuple, List[Tuple]] = {}
        scan_rows: List[Tuple[Tuple, Tuple]] = []  # (key, extension)
        seen: set = set()
        for source in self.sources:
            try:
                if tracer is None:
                    result = source.select(sub_query)
                else:
                    with tracer.remote_call(
                        source, kind="bind-join", bindings=len(term_keys)
                    ) as span:
                        result = source.select(sub_query)
                        if span is not None:
                            span.attrs["rows"] = len(result.rows)
            except EndpointError:
                continue
            for row in result.rows:
                key = tuple(row.get(name) for name in self.shared)
                extension = tuple(row.get(name) for name in self.fresh)
                if (key, extension) in seen:
                    continue
                seen.add((key, extension))
                if None in key:
                    scan_rows.append((key, extension))
                else:
                    exact.setdefault(key, []).append(extension)

        for lrow in batch:
            lkey = tuple(
                None if lrow[slot] is None else decode(lrow[slot])
                for slot in self.left_key_slots
            )
            if None not in lkey:
                matches = [(lkey, ext) for ext in exact.get(lkey, ())]
                matches.extend(
                    pair for pair in scan_rows if _terms_compatible(lkey, pair[0])
                )
            else:
                matches = [
                    (key, ext) for key, exts in exact.items()
                    if _terms_compatible(lkey, key) for ext in exts
                ]
                matches.extend(
                    pair for pair in scan_rows if _terms_compatible(lkey, pair[0])
                )
            for key, extension in matches:
                if charge is not None:
                    charge(1)
                merged = lrow
                if None in lkey:
                    # The pattern bound a variable this left row left
                    # unbound: the joined solution takes the new value.
                    cells = list(lrow)
                    for position, slot in enumerate(self.left_key_slots):
                        if cells[slot] is None and key[position] is not None:
                            cells[slot] = encode(key[position])
                    merged = tuple(cells)
                yield merged + tuple(
                    None if term is None else encode(term) for term in extension
                )

    def label(self) -> str:
        at = ",".join(getattr(s, "name", "?") for s in self.sources)
        return (
            f"RemoteBindJoin({_pattern_text(self.pattern)} @ {at}, "
            f"batch={self.batch_size})"
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.left,)


def _merge_shared(
    lrow: IdRow,
    rrow: IdRow,
    left_slots: Tuple[int, ...],
    right_slots: Tuple[int, ...],
) -> Optional[IdRow]:
    """Compatibility-merge one row pair over their shared slots.

    Returns the left row with unbound shared cells filled from the
    right, or ``None`` when two bound cells clash.  The single merge
    implementation behind :class:`CompatJoinNode` and
    :class:`LeftJoinNode`, so inner- and outer-join compatibility can
    never diverge.
    """
    cells: Optional[List[Optional[int]]] = None
    for lslot, rslot in zip(left_slots, right_slots):
        lval, rval = lrow[lslot], rrow[rslot]
        if lval is None:
            if rval is not None:
                if cells is None:
                    cells = list(lrow)
                cells[lslot] = rval
        elif rval is not None and lval != rval:
            return None
    return tuple(cells) if cells is not None else lrow


def _terms_compatible(left_key: Tuple, right_key: Tuple) -> bool:
    """Join compatibility over decoded terms (None = unbound)."""
    for a, b in zip(left_key, right_key):
        if a is None or b is None:
            continue
        if a != b:
            return False
    return True


class QueryPlanner:
    """Compiles normalized logical algebra into physical plans.

    The shared optimizer of the four-stage pipeline: every consumer
    (local evaluation, federation mediation, HTTP serving) plans
    through this class.  BGP conjunctions become left-deep
    hash/bind-join trees; UNION, MINUS and VALUES compile to their
    dedicated operators.
    """

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def plan(self, group: GraphPattern, budget: Optional[int] = None) -> Optional[PlanNode]:
        """Plan one group graph pattern (OPTIONALs excluded — the
        evaluator applies those per base solution).

        Returns ``None`` when the group needs the backtracking
        fallback: an empty basic group, fully concrete patterns
        (existence checks), a disconnected pattern join graph, or a
        join keyed on a variable UNION/UNDEF may leave unbound.

        ``budget`` is the caller's cost-meter budget, if any.  Hash
        joins pay a full scan of the build pattern up front; on a
        budgeted (endpoint-guarded) evaluation that scan can burn the
        budget a selective probe sequence would never have touched, so
        a hash join is only chosen while its estimated metered cost
        still fits the budget with a 2x margin — beyond that the
        planner stays on bind joins, whose cost profile matches the
        seed backtracker's.
        """
        root = normalize(translate_group(group, include_optionals=False))
        if isinstance(root, BGP) and not root.patterns:
            # The unit group: the backtracker's "yield the initial
            # binding" path is already exact (and EXPLAIN says Empty()).
            return None
        return self.compile(root, budget)

    def compile(self, node: AlgebraNode, budget: Optional[int] = None) -> Optional[PlanNode]:
        """Compile one normalized logical node; ``None`` = fallback."""
        filters, core = _strip_filters(node)
        compiled = self._compile_core(core, filters, budget)
        return compiled

    def _compile_core(
        self,
        core: AlgebraNode,
        pending: List[Expression],
        budget: Optional[int],
    ) -> Optional[PlanNode]:
        store = self.store
        if isinstance(core, Empty):
            return self._finish(ValuesScanNode(store, (), ()), pending)
        if isinstance(core, ValuesTable):
            node = ValuesScanNode(store, core.names, core.rows)
            if node.has_unknown_terms:
                # A VALUES term the store never interned has no ID; the
                # term-space fallback carries the original terms.
                return None
            return self._finish(node, pending)
        if isinstance(core, LogicalUnion):
            branches = []
            for branch in core.branches:
                compiled = self.compile(branch, budget)
                if compiled is None:
                    return None
                branches.append(compiled)
            return self._finish(UnionNode(branches), pending)
        if isinstance(core, LogicalMinus):
            left = self.compile(core.left, budget)
            if left is None:
                return None
            right = self.compile(core.right, budget)
            if right is None:
                return None
            return self._finish(MinusNode(left, right), pending)
        if isinstance(core, (BGP, LogicalJoin)):
            return self._compile_conjunction(conjuncts(core), pending, budget)
        return None  # LeftJoin and modifiers are handled by the evaluator

    def _finish(self, node: PlanNode, pending: List[Expression]) -> PlanNode:
        """Attach any stripped filters to a finished operator."""
        node.filters.extend(pending)
        return node

    def _compile_conjunction(
        self,
        parts: List[AlgebraNode],
        pending: List[Expression],
        budget: Optional[int],
    ) -> Optional[PlanNode]:
        """Greedy left-deep join over patterns and compiled sub-plans."""
        store = self.store
        patterns: List[TriplePattern] = []
        leaves: List[PlanNode] = []
        pending = list(pending)
        for part in parts:
            part_filters, part_core = _strip_filters(part)
            if isinstance(part_core, BGP):
                patterns.extend(part_core.patterns)
                pending.extend(part_filters)
            else:
                leaf = self._compile_core(part_core, part_filters, budget)
                if leaf is None:
                    return None
                leaves.append(leaf)
        patterns = list(dict.fromkeys(patterns))
        if any(not pattern.variables() for pattern in patterns):
            return None  # fully concrete patterns are existence checks
        if not patterns and not leaves:
            return None
        stats = store.predicate_stats_ids()
        # Sharded stores get the plan-visible scatter-gather scan; it is
        # execution-identical but renders fan-out and records per-shard
        # row counts under the tracer.
        scan_cls = (
            ShardScanNode if getattr(store.backend, "shards", None) is not None
            else ScanNode
        )
        candidates: List[PlanNode] = [
            scan_cls(store, pattern, store.cardinality_estimate(pattern))
            for pattern in patterns
        ] + leaves

        node: PlanNode = min(candidates, key=lambda c: c.est_rows)
        candidates.remove(node)
        self._attach_filters(node, pending)
        est_cost = node.est_rows  # scan candidates charged so far

        while candidates:
            connected = [
                candidate for candidate in candidates
                if any(name in node.slot_of for name in candidate.variables)
            ]
            if not connected:
                if any(isinstance(c, ScanNode) for c in candidates):
                    return None  # pattern cartesian corner: backtracker's
                # Disjoint VALUES/UNION tables: an explicit cross
                # product (keyless hash join) is small and well-defined.
                best = min(candidates, key=lambda c: c.est_rows)
                candidates.remove(best)
                node = HashJoinNode(
                    node, best, (), max(1, node.est_rows) * max(1, best.est_rows)
                )
                self._attach_filters(node, pending)
                continue
            best = min(
                connected,
                key=lambda candidate: self._join_estimate(node, candidate, stats),
            )
            candidates.remove(best)
            keys = tuple(name for name in best.variables if name in node.slot_of)
            if any(
                name in node.maybe_unbound or name in best.maybe_unbound
                for name in keys
            ):
                # Joining on a maybe-unbound variable needs SPARQL
                # compatibility semantics; the term-space fallback has
                # them, the ID-space hash join does not.
                return None
            est = self._join_estimate(node, best, stats)
            hash_cost = est_cost + best.est_rows + est
            prefer_bind = (
                isinstance(best, ScanNode)
                and node.est_rows * BIND_JOIN_FACTOR < best.est_rows
            )
            over_budget = budget is not None and hash_cost * 2 > budget
            if isinstance(best, ScanNode) and (prefer_bind or over_budget):
                node = BindJoinNode(store, node, best.pattern, est)
                est_cost += est  # probes charge per produced candidate
            else:
                # Push single-input filters below the build side so the
                # hash table only holds rows that can survive.
                self._attach_filters(best, pending)
                node = HashJoinNode(node, best, keys, est)
                est_cost = hash_cost
            self._attach_filters(node, pending)

        # Filters whose variables never appear in any input evaluate
        # against an unbound binding at the root: error -> row dropped,
        # exactly like the seed's last-depth assignment.
        node.filters.extend(pending)
        return node

    # -- cost model ----------------------------------------------------

    def _join_estimate(
        self,
        left: PlanNode,
        candidate: PlanNode,
        stats: Dict[int, Tuple[int, int, int]],
    ) -> int:
        shared = [name for name in candidate.variables if name in left.slot_of]
        if not isinstance(candidate, ScanNode):
            # VALUES/UNION inputs: assume near-unique keys, so the join
            # output tracks the larger input.
            if shared:
                return max(left.est_rows, candidate.est_rows)
            return max(1, left.est_rows) * max(1, candidate.est_rows)
        distinct = 1
        for name in shared:
            distinct = max(distinct, self._distinct_values(candidate, name, stats))
        return max(0, left.est_rows * candidate.est_rows // max(distinct, 1))

    def _distinct_values(
        self,
        scan: ScanNode,
        name: str,
        stats: Dict[int, Tuple[int, int, int]],
    ) -> int:
        """Distinct count of variable ``name`` within ``scan``'s pattern."""
        pattern = scan.pattern
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            return max(scan.est_rows, 1)
        pid = self.store.term_id(predicate)
        stat = stats.get(pid)
        if stat is None:
            return max(scan.est_rows, 1)
        count, distinct_s, distinct_o = stat
        if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
            return max(distinct_s, 1)
        if isinstance(pattern.object, Variable) and pattern.object.name == name:
            return max(distinct_o, 1)
        return max(scan.est_rows, 1)

    # -- filter placement ----------------------------------------------

    @staticmethod
    def _attach_filters(node: PlanNode, pending: List[Expression]) -> None:
        """See :func:`attach_ready_filters` — one implementation serves
        the local and the federated planner."""
        attach_ready_filters(node, pending)


def _strip_filters(node: AlgebraNode) -> Tuple[List[Expression], AlgebraNode]:
    """Peel Filter wrappers off a logical node, outermost first."""
    filters: List[Expression] = []
    while isinstance(node, LogicalFilter):
        filters.append(node.expression)
        node = node.child
    return filters, node


def attach_ready_filters(node: PlanNode, pending: List[Expression]) -> None:
    """Attach every pending filter whose variables are *certainly*
    bound by ``node`` (shared by the local and federated planners).

    A variable that is merely maybe-unbound must wait: evaluating the
    filter against an UNDEF row here would drop it, while a later
    compatibility join could still bind the variable and let the row
    pass.  Filters that never become attachable go onto the plan root
    (group-level scope), where erroring on an unbound variable is the
    correct SPARQL outcome.
    """
    ready = [
        expr for expr in pending
        if all(
            name in node.slot_of and name not in node.maybe_unbound
            for name in expr.variables()
        )
    ]
    for expr in ready:
        node.filters.append(expr)
        pending.remove(expr)


def refresh_plan_estimates(node: PlanNode, store: TripleStore) -> PlanNode:
    """Re-resolve leaf cardinality estimates from current store stats.

    ``est=N`` on a plan is computed at *plan* time; a store mutated
    since then (bumping :attr:`~repro.store.TripleStore.generation`)
    leaves those numbers describing data that no longer exists.  The
    generation-keyed plan cache already replans after mutations, but a
    caller holding a plan object across writes would still print stale
    estimates — EXPLAIN ANALYZE calls this first so the ``est → actual``
    comparison is always against generation-current statistics.  Only
    leaves re-resolve (scans against the backend's free estimates,
    VALUES tables against their literal row count); join estimates
    derive from the same statistics snapshot at planning, so a cached
    same-generation plan is already consistent.
    """
    if isinstance(node, ScanNode):
        node.est_rows = store.cardinality_estimate(node.pattern)
    elif isinstance(node, ValuesScanNode):
        node.est_rows = len(node.id_rows)
    for child in node.children():
        refresh_plan_estimates(child, store)
    return node


def explain_plan(node: PlanNode, indent: int = 0) -> str:
    """Render the plan tree, one operator per line.

    Each operator is annotated ``batch`` (native columnar producer) or
    ``rows`` (row-wise, adapted into batches by the base class), so the
    EXPLAIN surface shows exactly where the vectorized path runs.
    """
    pad = "  " * indent
    native = type(node)._produce_batches is not PlanNode._produce_batches
    mode = "batch" if native else "rows"
    line = f"{pad}{node.label()}  [est={node.est_rows}, {mode}]"
    if node.filters:
        from .serializer import serialize_expression

        rendered = ", ".join(serialize_expression(expr) for expr in node.filters)
        line += f" filter({rendered})"
    lines = [line]
    for child in node.children():
        lines.append(explain_plan(child, indent + 1))
    return "\n".join(lines)
