"""Tokenizer for the supported SPARQL subset.

Produces a flat token stream consumed by the recursive-descent parser.
Token kinds:

* ``IRI``        — ``<http://...>`` (value excludes the angle brackets)
* ``PNAME``      — prefixed name ``dbo:almaMater`` (also bare ``rdf:type``)
* ``VAR``        — ``?name`` (value excludes the ``?``)
* ``STRING``     — quoted string, escapes resolved; may be followed by
                   ``LANGTAG`` or ``^^`` + IRI which the parser assembles
* ``LANGTAG``    — ``@en``
* ``NUMBER``     — integer or decimal
* ``KEYWORD``    — bare word (SELECT, WHERE, FILTER, UNION, VALUES,
                   MINUS, UNDEF, function names, ``a``)
* punctuation    — one of ``{ } ( ) . , ; * = != <= >= < > && || ! + - / ^^``

Keywords are not reserved at the token level — the tokenizer emits every
bare word as ``KEYWORD`` and the parser decides meaning by position.
:data:`STRUCTURAL_KEYWORDS` lists the words that open group-level
constructs; the parser uses it to reject them where a term is expected
(``?s MINUS ?o`` is a malformed triple, not a MINUS group) with an error
that names the misplaced keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import ParseError

__all__ = ["Token", "tokenize", "STRUCTURAL_KEYWORDS"]

#: Words that introduce group-level structure inside a WHERE clause.
#: They can never be a subject/predicate/object, so the parser treats an
#: occurrence in term position as a structural error rather than trying
#: to read them as a prefixed name or function.
STRUCTURAL_KEYWORDS = frozenset({
    "SELECT", "ASK", "WHERE", "FILTER", "OPTIONAL",
    "UNION", "MINUS", "VALUES", "UNDEF",
    "GROUP", "ORDER", "LIMIT", "OFFSET", "PREFIX",
})


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    value: str
    position: int


_PUNCT_TWO = ("&&", "||", "!=", "<=", ">=", "^^")
_PUNCT_ONE = "{}().,;*=<>!+-/"


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a quoted string starting at ``start`` (which is the quote)."""
    quote = text[start]
    out: List[str] = []
    i = start + 1
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise ParseError("dangling escape in string", i)
            nxt = text[i + 1]
            mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "'": "'", "\\": "\\"}
            if nxt not in mapping:
                raise ParseError(f"unsupported escape \\{nxt}", i)
            out.append(mapping[nxt])
            i += 2
            continue
        if ch == quote:
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on illegal input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "<":
            # An IRI only if it looks like one (no spaces before '>');
            # otherwise it is the less-than operator.
            end = text.find(">", i + 1)
            if end != -1:
                candidate = text[i + 1:end]
                if " " not in candidate and "\n" not in candidate and (
                    ":" in candidate or candidate == ""
                ):
                    tokens.append(Token("IRI", candidate, i))
                    i = end + 1
                    continue
            # fall through to operator handling
        if ch in "\"'":
            value, i2 = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            i = i2
            continue
        if ch == "@":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "-"):
                j += 1
            if j == i + 1:
                raise ParseError("empty language tag", i)
            tokens.append(Token("LANGTAG", text[i + 1:j], i))
            i = j
            continue
        if ch == "?" or ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise ParseError("empty variable name", i)
            tokens.append(Token("VAR", text[i + 1:j], i))
            i = j
            continue
        if text.startswith(tuple(_PUNCT_TWO), i):
            two = text[i:i + 2]
            tokens.append(Token(two, two, i))
            i += 2
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < n and text[i + 1].isdigit()
                            and (not tokens or tokens[-1].kind in
                                 ("{", "(", ",", "=", "!=", "<", ">", "<=", ">=",
                                  "&&", "||", "+", "-", "*", "/", "KEYWORD"))):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot
                                                   and j + 1 < n and text[j + 1].isdigit())):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch in _PUNCT_ONE:
            tokens.append(Token(ch, ch, i))
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            word = text[i:j]
            # Prefixed name: word ':' local  (no space allowed)
            if j < n and text[j] == ":":
                k = j + 1
                while k < n and (text[k].isalnum() or text[k] in "_-."):
                    k += 1
                # trailing dots belong to the triple terminator
                while k > j + 1 and text[k - 1] == ".":
                    k -= 1
                tokens.append(Token("PNAME", text[i:k], i))
                i = k
                continue
            tokens.append(Token("KEYWORD", word, i))
            i = j
            continue
        if ch == ":":
            # default-prefix name ":local"
            k = i + 1
            while k < n and (text[k].isalnum() or text[k] in "_-."):
                k += 1
            while k > i + 1 and text[k - 1] == ".":
                k -= 1
            tokens.append(Token("PNAME", text[i:k], i))
            i = k
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens
