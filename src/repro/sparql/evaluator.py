"""SPARQL query evaluation over a :class:`~repro.store.TripleStore`.

The front door of the four-stage pipeline (parse → logical algebra →
optimize → physical execution).  :class:`QueryEvaluator` parses, hands
the WHERE group to the shared optimizer
(:class:`~repro.sparql.plan.QueryPlanner`, which translates and
normalizes through :mod:`~repro.sparql.algebra`), and streams the
resulting physical plan.  Shapes the ID-space operators cannot express
run through the term-space fallback below, which implements:

* BGP matching as a backtracking index-nested-loop join.  Patterns are
  reordered greedily by estimated cardinality given the variables already
  bound — the classic selectivity heuristic — so that e.g. Appendix A's
  Q6 touches the small ``?s a <Type>`` candidate set before the broad
  ``?s ?p ?o`` one.
* FILTERs pushed to the earliest join position at which all their
  variables are bound (errors drop the row, per the SPARQL spec).
* UNION, inline VALUES data (with UNDEF) and MINUS, with full SPARQL
  compatibility semantics for partially bound solutions.
* One level of OPTIONAL (left outer join).
* DISTINCT, GROUP BY + COUNT/SUM/MIN/MAX/AVG, ORDER BY, LIMIT/OFFSET.
* Cost metering: every index probe charges the meter, so a budgeted
  endpoint aborts long evaluations exactly like a remote timeout.

Group operator order (both paths agree; see
:func:`~repro.sparql.algebra.translate_group`): basic patterns join
with VALUES and UNION blocks, filters apply, MINUS groups subtract,
OPTIONALs extend last.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import IRI, Literal, Term, Variable, XSD_INTEGER
from ..rdf.triples import Binding, TriplePattern
from ..store.triplestore import CostMeter, TripleStore
from .algebra import algebra_text, normalize, translate_group
from .ast_nodes import (
    Aggregate,
    Expression,
    GraphPattern,
    OrderCondition,
    Query,
    TermExpr,
    ValuesClause,
)
from .errors import EvaluationError, ExpressionError
from .functions import effective_boolean_value, evaluate_expression
from .parser import parse_query
from .plan import DEFAULT_BATCH_SIZE, QueryPlanner, explain_plan, refresh_plan_estimates
from .results import AskResult, SelectResult
from .trace import Tracer

__all__ = ["QueryEvaluator", "EXECUTION_MODES", "evaluate", "finalize_solutions"]

#: Sentinel distinguishing "no plan computed yet" from "planner said None".
_PLAN_UNSET = object()

#: Sentinel distinguishing "use_planner not passed" from an explicit bool.
_USE_PLANNER_UNSET = object()

#: Valid values for :class:`QueryEvaluator`'s ``execution`` keyword.
EXECUTION_MODES = ("planner", "backtrack", "auto")


def _paginate(rows, key_fn, distinct: bool, offset: int, limit: Optional[int]) -> List:
    """Shared DISTINCT → OFFSET → LIMIT paging over a streaming input.

    Used by both select pipelines (decoded bindings and ID tuples) so
    their paging semantics can never diverge: deduplicate on
    ``key_fn(row)`` first, then skip ``offset`` surviving rows, then
    stop as soon as ``limit`` rows are collected.
    """
    seen: Optional[set] = set() if distinct else None
    picked: List = []
    if limit is None or limit > 0:
        skipped = 0
        for row in rows:
            if seen is not None:
                key = key_fn(row)
                if key in seen:
                    continue
                seen.add(key)
            if skipped < offset:
                skipped += 1
                continue
            picked.append(row)
            if limit is not None and len(picked) >= limit:
                break
    return picked


class QueryEvaluator:
    """Evaluates parsed queries against one triple store.

    ``execution`` selects the strategy:

    * ``"auto"`` (the default) routes top-level groups through the
      cost-based hash/bind-join planner in :mod:`~repro.sparql.plan`;
      groups the planner cannot cover — and OPTIONAL sub-groups, which
      carry initial bindings — fall back to the term-space backtracking
      join below.
    * ``"planner"`` states planner-first intent explicitly.  Today it
      behaves like ``"auto"`` (the fallback still catches the shapes the
      ID-space operators cannot express — there is no complete
      planner-only evaluator); the distinct name reserves room for
      ``"auto"`` to become adaptive without breaking callers that pinned
      the planner.
    * ``"backtrack"`` pins the seed backtracking path, which the planner
      benchmarks use as their parity baseline.

    ``batch_size`` is the row count per :class:`~repro.sparql.plan.Batch`
    on the columnar execution path; ``0`` disables batching and runs the
    legacy tuple-at-a-time pipeline (the batch benchmarks' baseline).

    The old ``use_planner`` boolean is deprecated: ``True`` maps to
    ``execution="auto"``, ``False`` to ``execution="backtrack"``.
    """

    def __init__(
        self,
        store: TripleStore,
        use_planner=_USE_PLANNER_UNSET,
        *,
        execution: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        self.store = store
        if use_planner is not _USE_PLANNER_UNSET:
            if execution is not None:
                raise TypeError(
                    "pass execution=...; use_planner is deprecated and "
                    "cannot be combined with it"
                )
            warnings.warn(
                "QueryEvaluator(use_planner=...) is deprecated; pass "
                "execution='auto' (was use_planner=True) or "
                "execution='backtrack' (was use_planner=False)",
                DeprecationWarning,
                stacklevel=2,
            )
            execution = "auto" if use_planner else "backtrack"
        elif execution is None:
            execution = "auto"
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {execution!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        self.execution = execution
        self.batch_size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
        self._planner = QueryPlanner(store)
        # Physical plans keyed by (group identity, budget).  The value
        # pins a strong reference to the group so its ``id`` can never
        # be recycled, and records the store generation the plan was
        # built against: re-planning after a write keeps cardinality
        # estimates (and NO_ID encodings of previously-unseen constants)
        # honest.  Repeated evaluation of the same parsed query —
        # endpoints serving a hot query, benchmarks, the suggestion
        # cache — skips the planner entirely.
        self._plan_cache: Dict[Tuple[int, Optional[int]], Tuple[object, object, object]] = {}

    def _plan_group(self, group: GraphPattern, budget: Optional[int], tracer=None):
        """Plan ``group`` under ``budget``, memoized per (group, budget,
        store generation).  ``None`` verdicts (shapes the planner cannot
        express) are cached too — they are just as expensive to recompute."""
        key = (id(group), budget)
        generation = getattr(self.store, "generation", None)
        entry = self._plan_cache.get(key)
        if entry is not None and entry[0] is group and entry[1] == generation:
            if tracer is not None:
                tracer.event("plan-cache", hit=True)
            return entry[2]
        if tracer is not None:
            tracer.event("plan-cache", hit=False)
        plan = self._planner.plan(group, budget=budget)
        if len(self._plan_cache) >= 64:
            self._plan_cache.clear()
        self._plan_cache[key] = (group, generation, plan)
        return plan

    @property
    def use_planner(self) -> bool:
        """Deprecated read-only view of the mode (True unless pinned to
        the backtracker).  Kept so existing introspection keeps working;
        set the mode via ``execution=`` at construction."""
        return self.execution != "backtrack"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: Query,
        meter: Optional[CostMeter] = None,
        tracer: Optional[Tracer] = None,
    ):
        """Evaluate ``query``; returns :class:`SelectResult` or :class:`AskResult`.

        ``tracer`` (optional) records an operator-level execution trace
        on the planned batch path; ``None`` keeps the hot path untouched
        (a single ``is None`` test per operator per query).
        """
        meter = meter or CostMeter()
        if query.form == "ASK":
            for _ in self._solve_group(query.where, {}, meter, tracer=tracer):
                return AskResult(True, cost=meter.cost)
            return AskResult(False, cost=meter.cost)
        return self._evaluate_select(query, meter, tracer)

    def analyze(
        self,
        query: "Query | str",
        meter: Optional[CostMeter] = None,
        tracer: Optional[Tracer] = None,
    ):
        """EXPLAIN ANALYZE: execute ``query`` under a tracer and return
        ``(result, trace)`` where ``trace`` is the finished
        :class:`~repro.sparql.trace.QueryTrace`.

        Cardinality estimates on a reused physical plan are re-resolved
        against current store statistics before execution
        (:func:`~repro.sparql.plan.refresh_plan_estimates`), so the
        ``est`` attributes in the trace reflect generation-current stats
        even when the plan object predates a store mutation.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        meter = meter or CostMeter()
        if tracer is None:
            tracer = Tracer(query=query if isinstance(query, str) else "")
        if self.use_planner and not parsed.where.optionals:
            plan = self._plan_group(parsed.where, meter.budget, tracer)
            if plan is not None:
                refresh_plan_estimates(plan, self.store)
        result = self.evaluate(parsed, meter, tracer=tracer)
        trace = tracer.finish()
        trace.attrs["cost"] = meter.cost
        return result, trace

    def explain(self, query: "Query | str", budget: Optional[int] = None) -> str:
        """Human-readable plan dump for ``query`` (no execution).

        The first line summarizes the solution modifiers; the tree below
        it is the planner's operator pipeline, or the backtracker's
        greedy pattern order when the group falls back.  OPTIONAL
        sub-groups are listed after the base plan (they always run
        through the backtracker, once per base solution).

        Pass the same ``budget`` the evaluation will run under (endpoints
        do) — strategy choice is budget-aware, so an unbudgeted EXPLAIN
        can show hash joins a guarded execution would replace with bind
        joins.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        return (
            f"{self._explain_header(parsed)}\n"
            f"{self._explain_group(parsed.where, budget=budget)}"
        )

    def _explain_header(self, query: Query) -> str:
        header = query.form
        if query.distinct:
            header += " DISTINCT"
        if query.form == "SELECT":
            names = query.projected_names()
            header += " " + (" ".join(f"?{name}" for name in names) if names else "*")
        modifiers = []
        if query.group_by:
            modifiers.append("group_by=" + ",".join(f"?{n}" for n in query.group_by))
        if query.order_by:
            modifiers.append(f"order_by[{len(query.order_by)}]")
        if query.limit is not None:
            modifiers.append(f"limit={query.limit}")
        if query.offset:
            modifiers.append(f"offset={query.offset}")
        if modifiers:
            header += "  [" + " ".join(modifiers) + "]"
        return header

    def _explain_group(
        self,
        group: GraphPattern,
        indent: int = 0,
        planned: bool = True,
        budget: Optional[int] = None,
    ) -> str:
        pad = "  " * indent
        plan = (
            self._plan_group(group, budget)
            if (planned and self.use_planner)
            else None
        )
        if plan is not None:
            text = explain_plan(plan, indent)
        elif not group.is_basic():
            # Compound group the ID-space operators could not cover:
            # show the normalized logical tree the term-space fallback
            # will execute.
            logical = normalize(translate_group(group, include_optionals=False))
            text = (
                f"{pad}TermSpaceFallback:\n"
                f"{algebra_text(logical, indent + 1)}"
            )
        elif group.patterns:
            order = _order_patterns(self.store, group.patterns, set())
            steps = " -> ".join(
                " ".join(term.n3() for term in pattern.as_tuple())
                for pattern in order
            )
            text = f"{pad}Backtrack({steps})"
        else:
            text = f"{pad}Empty()"
        for optional in group.optionals:
            # OPTIONAL sub-groups always execute through the backtracker
            # (once per base solution, with its bindings) — showing a
            # planner tree here would describe a plan that never runs.
            text += (
                f"\n{pad}Optional:\n"
                f"{self._explain_group(optional, indent + 1, planned=False)}"
            )
        return text

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------

    def _evaluate_select(
        self, query: Query, meter: CostMeter, tracer: Optional[Tracer] = None
    ) -> SelectResult:
        if not (query.has_aggregates() or query.group_by or query.order_by):
            return self._evaluate_select_streaming(query, meter, tracer)
        solutions = list(self._solve_group(query.where, {}, meter, tracer=tracer))

        if query.has_aggregates() or query.group_by:
            rows = self._aggregate(query, solutions)
        else:
            rows = solutions

        # ORDER BY runs on the full solutions, *before* projection: SPARQL
        # allows ordering by variables that are not projected (e.g.
        # ``SELECT ?city ... ORDER BY DESC(?pop) LIMIT 1``).
        if query.order_by:
            rows = self._order(rows, query.order_by)

        names = query.projected_names()

        if not query.has_aggregates():
            rows = [self._project(row, query, names) for row in rows]

        if query.distinct:
            rows = _distinct(rows, names)

        offset = query.offset or 0
        if offset:
            rows = rows[offset:]
        if query.limit is not None:
            rows = rows[:query.limit]

        return SelectResult(variables=names, rows=rows, cost=meter.cost)

    def _evaluate_select_streaming(
        self, query: Query, meter: CostMeter, tracer: Optional[Tracer] = None
    ) -> SelectResult:
        """Pipeline for queries without aggregation or ordering.

        Solutions stream straight out of the join (planner or
        backtracker), are projected and deduplicated on the fly, and the
        iteration stops as soon as OFFSET + LIMIT rows have been
        produced — the early termination that keeps paged Appendix-A
        retrieval (Q6/Q7-style ``LIMIT .. OFFSET ..``) cheap.
        """
        names = query.projected_names()
        plan = _PLAN_UNSET
        if self.use_planner and not query.where.optionals:
            plan = self._plan_group(query.where, meter.budget, tracer)
            if plan is not None:
                items = self._plain_variable_items(query)
                if items is not None:
                    return self._select_from_plan(
                        query, plan, names, items, meter, tracer
                    )
        projected = (
            self._project(solution, query, names)
            for solution in self._solve_group(
                query.where, {}, meter, prepared_plan=plan, tracer=tracer
            )
        )
        rows = _paginate(
            projected,
            key_fn=lambda row: tuple(row.get(name) for name in names),
            distinct=query.distinct,
            offset=query.offset or 0,
            limit=query.limit,
        )
        return SelectResult(variables=names, rows=rows, cost=meter.cost)

    @staticmethod
    def _plain_variable_items(query: Query) -> Optional[List[Tuple[str, str]]]:
        """``(output name, variable name)`` pairs when every projection
        is a bare variable (or ``SELECT *``); None otherwise."""
        if query.select_star:
            return [(name, name) for name in query.projected_names()]
        items: List[Tuple[str, str]] = []
        for item in query.select_items:
            expr = item.expression
            if isinstance(expr, TermExpr) and isinstance(expr.term, Variable):
                items.append((item.output_name, expr.term.name))
            else:
                return None
        return items

    def _select_from_plan(
        self,
        query: Query,
        plan,
        names: Sequence[str],
        items: List[Tuple[str, str]],
        meter: CostMeter,
        tracer: Optional[Tracer] = None,
    ) -> SelectResult:
        """Late materialization: project, deduplicate and page entirely
        on dictionary-ID tuples; decode only the rows that survive.

        Sound because the dictionary is a bijection — distinct IDs are
        distinct terms — so DISTINCT over ID tuples equals DISTINCT over
        the decoded rows.
        """
        store = self.store
        slot_of = plan.slot_of
        pairs = [(out, slot_of.get(var)) for out, var in items]
        live = tuple(slot for _, slot in pairs if slot is not None)
        distinct = query.distinct
        offset = query.offset or 0
        limit = query.limit
        batch_size = self.batch_size
        if batch_size <= 0:
            source: Iterator = plan.rows_tuple(store, meter)
        else:
            if limit is not None:
                # Clamp the batch size to the page so the scan never
                # charges the meter for (or materializes) more candidate
                # rows per batch than early termination will consume —
                # page-sized LIMIT queries keep the tuple pipeline's
                # exact cost profile.
                batch_size = max(1, min(batch_size, limit + offset))
            elif not distinct and not offset:
                # Fast path: every row survives — decode whole columns.
                return self._select_all_batches(
                    plan, pairs, names, meter, batch_size, tracer
                )
            source = (
                row
                for batch in plan.batches(store, meter, batch_size, tracer)
                for row in batch.iter_rows()
            )
        picked = _paginate(
            source,
            key_fn=lambda row: tuple(row[slot] for slot in live),
            distinct=distinct,
            offset=offset,
            limit=limit,
        )
        decode = store.decode_id
        rows: List[Binding] = [
            {
                out: decode(row[slot])
                for out, slot in pairs
                if slot is not None and row[slot] is not None
            }
            for row in picked
        ]
        return SelectResult(variables=list(names), rows=rows, cost=meter.cost)

    def _select_all_batches(
        self,
        plan,
        pairs: List[Tuple[str, Optional[int]]],
        names: Sequence[str],
        meter: CostMeter,
        batch_size: int,
        tracer: Optional[Tracer] = None,
    ) -> SelectResult:
        """Unmodified SELECT tail: decode surviving columns wholesale.

        With no DISTINCT/OFFSET/LIMIT every produced row is returned, so
        projection happens column-at-a-time against the dictionary's
        ``terms`` list instead of per-cell ``decode_id`` calls.
        """
        store = self.store
        terms = store.dictionary.terms
        live_pairs = [(out, slot) for out, slot in pairs if slot is not None]
        outs = [out for out, _ in live_pairs]
        rows: List[Binding] = []
        for batch in plan.batches(store, meter, batch_size, tracer):
            if not live_pairs:
                rows.extend({} for _ in range(batch.length))
                continue
            columns = batch.columns
            if batch.has_unbound:
                decoded = [
                    [None if cell < 0 else terms[cell] for cell in columns[slot]]
                    for _, slot in live_pairs
                ]
                rows.extend(
                    {
                        out: cell
                        for out, cell in zip(outs, cells)
                        if cell is not None
                    }
                    for cells in zip(*decoded)
                )
            else:
                decoded = [
                    map(terms.__getitem__, columns[slot])
                    for _, slot in live_pairs
                ]
                # Width-specialized dict displays: BUILD_MAP over a C
                # zip is several times faster than dict(zip(...)) per
                # row, and this loop dominates large-result queries.
                if len(outs) == 1:
                    (o0,) = outs
                    rows += [{o0: a} for a in decoded[0]]
                elif len(outs) == 2:
                    o0, o1 = outs
                    rows += [{o0: a, o1: b} for a, b in zip(*decoded)]
                elif len(outs) == 3:
                    o0, o1, o2 = outs
                    rows += [
                        {o0: a, o1: b, o2: c} for a, b, c in zip(*decoded)
                    ]
                else:
                    rows += [
                        dict(zip(outs, cells)) for cells in zip(*decoded)
                    ]
        return SelectResult(variables=list(names), rows=rows, cost=meter.cost)

    def _project(self, row: Binding, query: Query, names: Sequence[str]) -> Binding:
        if query.select_star:
            return {name: row[name] for name in names if name in row}
        projected: Binding = {}
        for item in query.select_items:
            try:
                projected[item.output_name] = evaluate_expression(item.expression, row)
            except ExpressionError:
                # Unbound projection variable: leave the cell empty.
                continue
        return projected

    # ------------------------------------------------------------------
    # Group pattern solving
    # ------------------------------------------------------------------

    def _solve_group(
        self,
        group: GraphPattern,
        initial: Binding,
        meter: CostMeter,
        prepared_plan=_PLAN_UNSET,
        tracer: Optional[Tracer] = None,
    ) -> Iterator[Binding]:
        """Solve one group graph pattern: planned operators or the
        term-space fallback, with OPTIONAL application shared by both.

        The planner covers top-level groups (no initial bindings),
        including UNION/VALUES/MINUS; it returns ``None`` for the
        shapes it cannot express and those — plus OPTIONAL sub-groups,
        which arrive with bindings — run through the compound
        term-space path below.  ``prepared_plan`` carries a plan (or
        the ``None`` verdict) a caller already computed, so a query is
        never planned twice.
        """
        base = self._solve_compound(group, initial, meter, prepared_plan, tracer)
        if not group.optionals:
            yield from base
            return
        for solution in base:
            yield from self._apply_optionals(group.optionals, solution, meter)

    def _solve_compound(
        self,
        group: GraphPattern,
        initial: Binding,
        meter: CostMeter,
        prepared_plan=_PLAN_UNSET,
        tracer: Optional[Tracer] = None,
    ) -> Iterator[Binding]:
        if self.use_planner and not initial:
            plan = (
                self._plan_group(group, meter.budget, tracer)
                if prepared_plan is _PLAN_UNSET
                else prepared_plan
            )
            if plan is not None:
                store = self.store
                names = plan.variables
                batch_size = self.batch_size
                if batch_size <= 0:
                    decode = store.decode_id
                    for row in plan.rows_tuple(store, meter):
                        yield {
                            name: decode(term_id)
                            for name, term_id in zip(names, row)
                            if term_id is not None
                        }
                    return
                terms = store.dictionary.terms
                for batch in plan.batches(store, meter, batch_size, tracer):
                    if batch.has_unbound:
                        for row in batch.iter_raw():
                            yield {
                                name: terms[term_id]
                                for name, term_id in zip(names, row)
                                if term_id >= 0
                            }
                    else:
                        for row in batch.iter_raw():
                            yield {
                                name: terms[term_id]
                                for name, term_id in zip(names, row)
                            }
                return
        yield from self._solve_term_space(group, initial, meter)

    def _solve_term_space(
        self,
        group: GraphPattern,
        initial: Binding,
        meter: CostMeter,
    ) -> Iterator[Binding]:
        """Fallback composition in term space: backtrack over the basic
        patterns, then join VALUES tables and UNION chains, apply the
        filters that had to wait for their variables, subtract MINUS
        groups.  Implements full compatibility semantics (an unbound
        variable is compatible with anything), which is exactly what
        the ID-space operators cannot express.
        """
        pattern_vars = set(initial)
        for pattern in group.patterns:
            pattern_vars.update(pattern.variables())
        early: List[Expression] = []
        late: List[Expression] = []
        for expr in group.filters:
            target = early if set(expr.variables()) <= pattern_vars else late
            target.append(expr)

        solutions = self._solve_backtrack(group.patterns, early, initial, meter)
        for clause in group.values:
            solutions = self._join_values(solutions, clause, meter)
        for branches in group.unions:
            solutions = self._join_union(solutions, branches, meter)
        for expr in late:
            solutions = (
                solution for solution in solutions if _filter_passes(expr, solution)
            )
        for minus in group.minuses:
            solutions = self._apply_minus(solutions, minus, meter)
        yield from solutions

    def _join_values(
        self,
        solutions: Iterator[Binding],
        clause: ValuesClause,
        meter: CostMeter,
    ) -> Iterator[Binding]:
        rows = clause.bindings()
        for solution in solutions:
            for row in rows:
                meter.charge(1)
                merged = _merge_compatible(solution, row)
                if merged is not None:
                    yield merged

    def _join_union(
        self,
        solutions: Iterator[Binding],
        branches: Sequence[GraphPattern],
        meter: CostMeter,
    ) -> Iterator[Binding]:
        for solution in solutions:
            for branch in branches:
                # Solving with the current solution as initial bindings
                # pins the shared variables, which is join compatibility.
                yield from self._solve_group(branch, solution, meter)

    def _apply_minus(
        self,
        solutions: Iterator[Binding],
        minus: GraphPattern,
        meter: CostMeter,
    ) -> Iterator[Binding]:
        excluders: Optional[List[Binding]] = None
        for solution in solutions:
            if excluders is None:
                # MINUS groups are uncorrelated: evaluated once, with
                # no bindings flowing in from the left side.
                excluders = list(self._solve_group(minus, {}, meter))
            if not any(_minus_excludes(solution, other) for other in excluders):
                yield solution

    def _solve_backtrack(
        self,
        patterns: Sequence[TriplePattern],
        filters: Sequence[Expression],
        initial: Binding,
        meter: CostMeter,
    ) -> Iterator[Binding]:
        """Backtracking index-nested-loop join, entirely in ID space.

        Patterns are encoded once (``store.encode_pattern``) and the
        backtracker binds variable names to dictionary IDs — every probe,
        comparison and hash during the join is over plain ints.  Terms
        are decoded only when a FILTER needs evaluating at its join depth
        and when a complete solution is materialized.  Initially bound
        terms the store has never interned pin their variable to
        ``NO_ID``, which matches nothing, while filters keep seeing the
        original term through the decoded view.
        """
        store = self.store
        filters = list(filters)
        order = _order_patterns(store, patterns, set(initial.keys()))
        filter_positions = _assign_filters(order, filters, set(initial.keys()))

        encoded = [store.encode_pattern(pattern) for pattern in order]
        initial_ids = {name: store.term_id(term) for name, term in initial.items()}

        def decode_binding(id_binding: Dict[str, int]) -> Binding:
            decoded = dict(initial)
            decode = store.decode_id
            for name, term_id in id_binding.items():
                if name not in decoded:
                    decoded[name] = decode(term_id)
            return decoded

        def backtrack(index: int, id_binding: Dict[str, int]) -> Iterator[Binding]:
            ready = filter_positions.get(index)
            decoded = None
            if ready:  # filters whose variables are all bound at this depth
                decoded = decode_binding(id_binding)
                for expr in ready:
                    if not _filter_passes(expr, decoded):
                        return
            if index == len(encoded):
                # Complete solution: reuse the filter decode if one just
                # happened rather than decoding the same binding twice.
                yield decoded if decoded is not None else decode_binding(id_binding)
                return
            probe: List[Optional[int]] = [None, None, None]
            free: List[Tuple[int, str]] = []
            for position, entry in enumerate(encoded[index]):
                if isinstance(entry, str):
                    bound = id_binding.get(entry)
                    if bound is not None:
                        probe[position] = bound
                    else:
                        free.append((position, entry))
                else:
                    probe[position] = entry
            for row in store.match_ids(probe[0], probe[1], probe[2], meter):
                merged = dict(id_binding)
                consistent = True
                for position, name in free:
                    value = row[position]
                    seen = merged.get(name)
                    if seen is not None and seen != value:
                        consistent = False  # repeated variable mismatch
                        break
                    merged[name] = value
                if consistent:
                    yield from backtrack(index + 1, merged)

        yield from backtrack(0, initial_ids)

    def _apply_optionals(
        self,
        optionals: Sequence[GraphPattern],
        solution: Binding,
        meter: CostMeter,
    ) -> Iterator[Binding]:
        current = [solution]
        for optional in optionals:
            extended: List[Binding] = []
            for row in current:
                matches = list(self._solve_group(optional, row, meter))
                extended.extend(matches if matches else [row])
            current = extended
        yield from current


    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _aggregate(self, query: Query, solutions: List[Binding]) -> List[Binding]:
        groups: Dict[Tuple, List[Binding]] = {}
        if query.group_by:
            for solution in solutions:
                key = tuple(solution.get(name) for name in query.group_by)
                groups.setdefault(key, []).append(solution)
        else:
            # Implicit single group (COUNT over the whole solution set);
            # SPARQL still yields one row when there are no solutions.
            groups[()] = solutions

        rows: List[Binding] = []
        for key, members in groups.items():
            row: Binding = {}
            for name, value in zip(query.group_by, key):
                if value is not None:
                    row[name] = value
            for item in query.select_items:
                if item.is_aggregate():
                    try:
                        row[item.output_name] = _compute_aggregate(item.expression, members)  # type: ignore[arg-type]
                    except EvaluationError:
                        # SPARQL: an erroring aggregate (e.g. AVG over an
                        # empty group) leaves the variable unbound.
                        continue
                else:
                    # A grouped plain variable: constant within the group.
                    try:
                        row[item.output_name] = evaluate_expression(
                            item.expression, members[0] if members else {}
                        )
                    except ExpressionError:
                        continue
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------

    def _order(self, rows: List[Binding], conditions: Sequence[OrderCondition]) -> List[Binding]:
        decorated = [(self._sort_key(row, conditions), i, row) for i, row in enumerate(rows)]
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        return [row for _, _, row in decorated]

    def _sort_key(self, row: Binding, conditions: Sequence[OrderCondition]) -> Tuple:
        key: List = []
        for condition in conditions:
            try:
                term = evaluate_expression(condition.expression, row)
                rank, value = _orderable(term)
            except ExpressionError:
                rank, value = (0, "")  # unbound sorts first, as in SPARQL
            if not condition.ascending:
                rank = -rank
                value = _Reversed(value)
            key.append((rank, value))
        return tuple(key)


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        try:
            return other.value < self.value
        except TypeError:
            return str(other.value) < str(self.value)

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _orderable(term: Term) -> Tuple[int, object]:
    """Map a term to a (type-rank, comparable) pair for stable sorting."""
    if isinstance(term, Literal):
        try:
            if term.is_numeric() or term.lexical.strip().lstrip("+-").replace(".", "", 1).isdigit():
                return (1, float(term.lexical))
        except ValueError:
            pass
        return (2, term.lexical)
    if isinstance(term, IRI):
        return (3, term.value)
    return (4, str(term))


def _distinct(rows: List[Binding], names: Sequence[str]) -> List[Binding]:
    seen = set()
    unique: List[Binding] = []
    for row in rows:
        key = tuple(row.get(name) for name in names)
        if key in seen:
            continue
        seen.add(key)
        unique.append(row)
    return unique


def _filter_passes(expr: Expression, binding: Binding) -> bool:
    try:
        return effective_boolean_value(evaluate_expression(expr, binding))
    except ExpressionError:
        return False


def _merge_compatible(left: Binding, right: Binding) -> Optional[Binding]:
    """Join two solutions; None when a shared variable disagrees."""
    for name, value in right.items():
        if name in left and left[name] != value:
            return None
    merged = dict(left)
    merged.update(right)
    return merged


def _minus_excludes(solution: Binding, excluder: Binding) -> bool:
    """SPARQL MINUS: the excluder removes ``solution`` when they agree
    on at least one shared variable and disagree on none."""
    common = False
    for name, value in excluder.items():
        if name in solution:
            if solution[name] != value:
                return False
            common = True
    return common


def _order_patterns(
    store: TripleStore,
    patterns: Sequence[TriplePattern],
    bound: set,
) -> List[TriplePattern]:
    """Greedy selectivity ordering.

    Repeatedly picks the remaining pattern with the smallest cardinality
    estimate, treating variables bound by already-chosen patterns as
    constants for estimation purposes (estimated via the most selective
    concrete position).
    """
    remaining = list(patterns)
    ordered: List[TriplePattern] = []
    bound_now = set(bound)

    def estimate(pattern: TriplePattern) -> Tuple[int, int]:
        # Positions whose variable is already bound act like constants but
        # we cannot know the constant yet; approximate by halving.
        concrete = pattern.bind({name: IRI("urn:bound") for name in bound_now
                                 if name in pattern.variables()})
        free_vars = sum(1 for v in concrete.variables())
        raw = store.cardinality_estimate(pattern)
        # Patterns sharing bound variables join more selectively.
        shared = len(set(pattern.variables()) & bound_now)
        return (raw >> shared, free_vars)

    while remaining:
        best_index = min(range(len(remaining)), key=lambda i: estimate(remaining[i]))
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound_now.update(chosen.variables())
    return ordered


def _assign_filters(
    order: Sequence[TriplePattern],
    filters: Sequence[Expression],
    initially_bound: set,
) -> Dict[int, List[Expression]]:
    """Map join depth -> filters whose variables are all bound at that depth."""
    positions: Dict[int, List[Expression]] = {}
    bound = set(initially_bound)
    depth_of_var: Dict[str, int] = {name: 0 for name in bound}
    for depth, pattern in enumerate(order, start=1):
        for name in pattern.variables():
            depth_of_var.setdefault(name, depth)
    last_depth = len(order)
    for expr in filters:
        needed = expr.variables()
        depth = max((depth_of_var.get(name, last_depth) for name in needed), default=0)
        positions.setdefault(depth, []).append(expr)
    return positions


def _compute_aggregate(aggregate: Aggregate, members: List[Binding]) -> Term:
    if aggregate.name == "COUNT":
        if aggregate.argument is None:
            values: List[Term] = [Literal("1")] * len(members)
        else:
            values = _agg_values(aggregate, members)
        if aggregate.distinct:
            values = list(dict.fromkeys(values))
        return Literal(str(len(values)), datatype=XSD_INTEGER)

    values = _agg_values(aggregate, members)
    if aggregate.distinct:
        values = list(dict.fromkeys(values))
    numbers: List[float] = []
    for value in values:
        if isinstance(value, Literal):
            try:
                numbers.append(float(value.lexical))
            except ValueError:
                continue
    if aggregate.name == "SUM":
        return _int_or_double(sum(numbers))
    if not numbers:
        raise EvaluationError(f"{aggregate.name} over empty/non-numeric group")
    if aggregate.name == "MIN":
        return _int_or_double(min(numbers))
    if aggregate.name == "MAX":
        return _int_or_double(max(numbers))
    if aggregate.name == "AVG":
        return _int_or_double(sum(numbers) / len(numbers))
    raise EvaluationError(f"unsupported aggregate {aggregate.name}")


def _agg_values(aggregate: Aggregate, members: List[Binding]) -> List[Term]:
    values: List[Term] = []
    assert aggregate.argument is not None
    for member in members:
        try:
            values.append(evaluate_expression(aggregate.argument, member))
        except ExpressionError:
            continue
    return values


def _int_or_double(value: float) -> Literal:
    if float(value).is_integer():
        return Literal(str(int(value)), datatype=XSD_INTEGER)
    from ..rdf.terms import XSD_DOUBLE

    return Literal(repr(value), datatype=XSD_DOUBLE)


def finalize_solutions(
    evaluator: "QueryEvaluator", query: Query, solutions: List[Binding]
) -> SelectResult:
    """Apply a query's solution modifiers to pre-computed solutions.

    The mediator-side tail of the SELECT pipeline — aggregate, ORDER BY
    (pre-projection, so unprojected variables can order), projection,
    DISTINCT, OFFSET/LIMIT — shared by the federated processor and the
    QSM's batched probe executor, so remote rows and probe-group rows
    finish through exactly the code path local evaluation uses.
    """
    if query.has_aggregates() or query.group_by:
        rows = evaluator._aggregate(query, solutions)
    else:
        rows = solutions
    if query.order_by:
        rows = evaluator._order(rows, query.order_by)
    names = query.projected_names()
    if not query.has_aggregates():
        rows = [evaluator._project(row, query, names) for row in rows]
    if query.distinct:
        rows = _distinct(rows, names)
    offset = query.offset or 0
    if offset:
        rows = rows[offset:]
    if query.limit is not None:
        rows = rows[: query.limit]
    return SelectResult(variables=names, rows=rows)


def evaluate(store: TripleStore, query_text: str, meter: Optional[CostMeter] = None):
    """Parse and evaluate ``query_text`` against ``store`` in one call."""
    query = parse_query(query_text)
    return QueryEvaluator(store).evaluate(query, meter)
