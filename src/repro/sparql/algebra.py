"""Logical query algebra: the shared middle of the query pipeline.

Every consumer of the SPARQL engine — the local evaluator, the
in-process federation, and HTTP-federated execution — runs the same
four stages::

    parse  →  logical algebra  →  optimize  →  physical execution
    (parser.py)  (this module)   (this module     (plan.py /
                                  + plan.py)       federation/fedx.py)

This module owns stage two and the logical half of stage three: the
algebra node types, the translation from the concrete-syntax AST
(:class:`~repro.sparql.ast_nodes.GraphPattern`) into algebra trees, and
the semantics-preserving rewrite rules applied by :func:`normalize` —
duplicate-pattern deduplication, empty-group elimination, and filter
pushdown.  Physical operator selection (hash vs. bind joins, remote
batching) happens in :mod:`~repro.sparql.plan` and
:mod:`~repro.federation.fedx`, both of which compile these logical
trees.

Node inventory
--------------
* :class:`BGP` — a basic graph pattern (``BGP([])`` is the unit table:
  exactly one empty solution).
* :class:`Join` / :class:`LeftJoin` — inner and left-outer join
  (OPTIONAL translates to LeftJoin).
* :class:`Union` — alternation; branches need not bind the same
  variables.
* :class:`Minus` — anti-join; solutions of the left side are dropped
  when a compatible right-side solution shares at least one bound
  variable.
* :class:`ValuesTable` — inline data (``None`` cells are UNDEF).
* :class:`Filter` — expression constraint over its child.
* :class:`Empty` — the empty solution set (no rows); the normalizer's
  annihilator.
* :class:`Project` / :class:`Distinct` / :class:`OrderBy` /
  :class:`Slice` — the solution-modifier wrappers produced by
  :func:`translate_query`.

Variable accounting
-------------------
``variables()`` is the set a node *may* bind, in first-appearance
order.  ``maybe_unbound()`` is the subset not guaranteed to be bound in
every solution (UNION branches that skip a variable, UNDEF cells,
OPTIONAL extensions).  Physical planners use the distinction: joining
on a maybe-unbound variable needs SPARQL compatibility semantics, which
a hash join over IDs cannot express, so those shapes fall back to the
backtracking evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..rdf.terms import Term
from ..rdf.triples import TriplePattern
from .ast_nodes import Expression, GraphPattern, OrderCondition, Query

__all__ = [
    "AlgebraNode",
    "BGP",
    "Join",
    "LeftJoin",
    "Union",
    "Minus",
    "ValuesTable",
    "Filter",
    "Empty",
    "Project",
    "Distinct",
    "OrderBy",
    "Slice",
    "translate_group",
    "translate_query",
    "normalize",
    "conjuncts",
    "algebra_text",
]


class AlgebraNode:
    """Base class for logical algebra nodes."""

    def variables(self) -> Tuple[str, ...]:
        """Variables this node may bind, in first-appearance order."""
        raise NotImplementedError

    def maybe_unbound(self) -> frozenset:
        """Variables not guaranteed bound in every solution."""
        return frozenset()

    def certain_variables(self) -> Tuple[str, ...]:
        """Variables bound in every solution this node produces."""
        unbound = self.maybe_unbound()
        return tuple(name for name in self.variables() if name not in unbound)

    def children(self) -> Sequence["AlgebraNode"]:
        return ()

    def label(self) -> str:
        raise NotImplementedError


def _merge_names(*groups: Sequence[str]) -> Tuple[str, ...]:
    names: List[str] = []
    for group in groups:
        for name in group:
            if name not in names:
                names.append(name)
    return tuple(names)


@dataclass
class BGP(AlgebraNode):
    """A basic graph pattern.  ``BGP([])`` is the unit table."""

    patterns: List[TriplePattern] = field(default_factory=list)

    def variables(self) -> Tuple[str, ...]:
        return _merge_names(*(p.variables() for p in self.patterns))

    def label(self) -> str:
        if not self.patterns:
            return "Unit"
        return f"BGP[{len(self.patterns)}]"


@dataclass
class Join(AlgebraNode):
    """Inner join of two sub-solutions on their shared variables."""

    left: AlgebraNode
    right: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return _merge_names(self.left.variables(), self.right.variables())

    def maybe_unbound(self) -> frozenset:
        # A variable certain on either side is bound in every joined row.
        left_mu, right_mu = self.left.maybe_unbound(), self.right.maybe_unbound()
        certain = set(self.left.certain_variables()) | set(self.right.certain_variables())
        return frozenset((left_mu | right_mu) - certain)

    def children(self) -> Sequence[AlgebraNode]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Join"


@dataclass
class LeftJoin(AlgebraNode):
    """Left outer join (OPTIONAL): right-side bindings may be absent."""

    left: AlgebraNode
    right: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return _merge_names(self.left.variables(), self.right.variables())

    def maybe_unbound(self) -> frozenset:
        optional_only = set(self.right.variables()) - set(self.left.certain_variables())
        return frozenset(self.left.maybe_unbound() | optional_only)

    def children(self) -> Sequence[AlgebraNode]:
        return (self.left, self.right)

    def label(self) -> str:
        return "LeftJoin"


@dataclass
class Union(AlgebraNode):
    """Alternation: the bag union of all branch solutions."""

    branches: List[AlgebraNode]

    def variables(self) -> Tuple[str, ...]:
        return _merge_names(*(b.variables() for b in self.branches))

    def maybe_unbound(self) -> frozenset:
        if not self.branches:
            return frozenset()
        certain_everywhere = set(self.branches[0].certain_variables())
        for branch in self.branches[1:]:
            certain_everywhere &= set(branch.certain_variables())
        return frozenset(set(self.variables()) - certain_everywhere)

    def children(self) -> Sequence[AlgebraNode]:
        return tuple(self.branches)

    def label(self) -> str:
        return f"Union[{len(self.branches)}]"


@dataclass
class Minus(AlgebraNode):
    """Anti-join: drop left solutions with a compatible right solution
    sharing at least one bound variable (SPARQL MINUS semantics)."""

    left: AlgebraNode
    right: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return self.left.variables()  # MINUS never binds

    def maybe_unbound(self) -> frozenset:
        return self.left.maybe_unbound()

    def children(self) -> Sequence[AlgebraNode]:
        return (self.left, self.right)

    def label(self) -> str:
        return "Minus"


@dataclass
class ValuesTable(AlgebraNode):
    """Inline solution rows; ``None`` cells are UNDEF."""

    names: Tuple[str, ...]
    rows: Tuple[Tuple[Optional[Term], ...], ...]

    def variables(self) -> Tuple[str, ...]:
        return self.names

    def maybe_unbound(self) -> frozenset:
        return frozenset(
            name
            for position, name in enumerate(self.names)
            if any(row[position] is None for row in self.rows)
        )

    def label(self) -> str:
        return f"Values[{len(self.rows)}x{len(self.names)}]"


@dataclass
class Filter(AlgebraNode):
    """Keep child solutions for which the expression is true (errors
    drop the row, per the SPARQL spec)."""

    expression: Expression
    child: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return self.child.variables()

    def maybe_unbound(self) -> frozenset:
        return self.child.maybe_unbound()

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def label(self) -> str:
        return "Filter"


@dataclass
class Empty(AlgebraNode):
    """The empty solution set: no rows, under any store."""

    def variables(self) -> Tuple[str, ...]:
        return ()

    def label(self) -> str:
        return "Empty"


# ----------------------------------------------------------------------
# Solution modifiers (produced by translate_query)
# ----------------------------------------------------------------------


@dataclass
class Project(AlgebraNode):
    """Restrict solutions to the projected names."""

    names: Tuple[str, ...]
    child: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return self.names

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def label(self) -> str:
        return "Project(" + ", ".join(f"?{n}" for n in self.names) + ")"


@dataclass
class Distinct(AlgebraNode):
    child: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return self.child.variables()

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"


@dataclass
class OrderBy(AlgebraNode):
    conditions: List[OrderCondition]
    child: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return self.child.variables()

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def label(self) -> str:
        return f"OrderBy[{len(self.conditions)}]"


@dataclass
class Slice(AlgebraNode):
    offset: int
    limit: Optional[int]
    child: AlgebraNode

    def variables(self) -> Tuple[str, ...]:
        return self.child.variables()

    def children(self) -> Sequence[AlgebraNode]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        if self.offset:
            parts.append(f"offset={self.offset}")
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return "Slice(" + " ".join(parts) + ")"


# ----------------------------------------------------------------------
# Translation: concrete-syntax AST -> logical algebra
# ----------------------------------------------------------------------


def translate_group(group: GraphPattern, include_optionals: bool = True) -> AlgebraNode:
    """Translate one group graph pattern into a logical algebra tree.

    Operator order within a group (this engine's documented subset
    semantics, matched by both execution paths): the basic graph
    pattern joins with VALUES tables and UNION blocks, filters apply,
    MINUS groups subtract, and OPTIONALs extend last.

    ``include_optionals=False`` stops before the LeftJoin wrapping —
    the shape physical planners compile, with OPTIONAL application left
    to the evaluator (it runs per base solution).
    """
    node: AlgebraNode = BGP(list(group.patterns))
    for clause in group.values:
        node = Join(node, ValuesTable(tuple(clause.variables), tuple(clause.rows)))
    for branches in group.unions:
        node = Join(node, Union([translate_group(branch) for branch in branches]))
    for expr in group.filters:
        node = Filter(expr, node)
    for minus in group.minuses:
        node = Minus(node, translate_group(minus))
    if include_optionals:
        for optional in group.optionals:
            node = LeftJoin(node, translate_group(optional))
    return node


def translate_query(query: Query) -> AlgebraNode:
    """Translate a full query into algebra, modifiers included."""
    node = translate_group(query.where)
    if query.order_by:
        node = OrderBy(list(query.order_by), node)
    node = Project(tuple(query.projected_names()), node)
    if query.distinct:
        node = Distinct(node)
    if query.offset or query.limit is not None:
        node = Slice(query.offset or 0, query.limit, node)
    return node


# ----------------------------------------------------------------------
# Normalization: semantics-preserving rewrites
# ----------------------------------------------------------------------


def normalize(node: AlgebraNode) -> AlgebraNode:
    """Apply the rewrite rules bottom-up until the tree is stable.

    * **Duplicate-pattern dedup** — a BGP repeating the same triple
      pattern joins a solution set with itself: every shared variable
      is a join key, so the multiset is unchanged and the copy is
      dropped.  (This is also what keeps the federation from fetching
      and joining the same pattern twice.)
    * **Empty-group elimination** — ``Empty`` annihilates joins and
      vanishes from unions; a zero-row VALUES block becomes ``Empty``;
      single-branch unions unwrap; the unit BGP is a join identity;
      a MINUS whose right side is empty or shares no variable with the
      left is dropped.
    * **Filter pushdown** — filters sink through joins into the side
      that binds all their variables (certainly — a maybe-unbound
      variable blocks the push), into every UNION branch, and through
      the left side of MINUS.
    """
    if isinstance(node, (Project, Distinct, OrderBy, Slice)):
        node.child = normalize(node.child)
        return node
    if isinstance(node, BGP):
        node.patterns = list(dict.fromkeys(node.patterns))
        return node
    if isinstance(node, ValuesTable):
        return Empty() if not node.rows else node
    if isinstance(node, Join):
        left, right = normalize(node.left), normalize(node.right)
        if isinstance(left, Empty) or isinstance(right, Empty):
            return Empty()
        if isinstance(left, BGP) and not left.patterns:
            return right
        if isinstance(right, BGP) and not right.patterns:
            return left
        if isinstance(left, BGP) and isinstance(right, BGP):
            return normalize(BGP(left.patterns + right.patterns))
        return Join(left, right)
    if isinstance(node, Union):
        branches = [normalize(branch) for branch in node.branches]
        branches = [b for b in branches if not isinstance(b, Empty)]
        if not branches:
            return Empty()
        if len(branches) == 1:
            return branches[0]
        return Union(branches)
    if isinstance(node, Minus):
        left, right = normalize(node.left), normalize(node.right)
        if isinstance(left, Empty):
            return Empty()
        if isinstance(right, Empty):
            return left
        if not set(left.variables()) & set(right.variables()):
            # Disjoint domains are never "compatible with a shared
            # binding", so the subtraction cannot remove anything.
            return left
        return Minus(left, right)
    if isinstance(node, LeftJoin):
        left, right = normalize(node.left), normalize(node.right)
        if isinstance(left, Empty):
            return Empty()
        if isinstance(right, Empty):
            return left
        return LeftJoin(left, right)
    if isinstance(node, Filter):
        child = normalize(node.child)
        if isinstance(child, Empty):
            return Empty()
        return _push_filter(node.expression, child)
    return node


def _push_filter(expr: Expression, node: AlgebraNode) -> AlgebraNode:
    """Sink one filter as deep as its variables allow."""
    needed = set(expr.variables())
    if isinstance(node, Join):
        for attr in ("left", "right"):
            side = getattr(node, attr)
            if needed <= set(side.variables()) and not needed & side.maybe_unbound():
                setattr(node, attr, _push_filter(expr, side))
                return node
        return Filter(expr, node)
    if isinstance(node, Union):
        node.branches = [_push_filter(expr, branch) for branch in node.branches]
        return node
    if isinstance(node, Minus):
        node.left = _push_filter(expr, node.left)
        return node
    if isinstance(node, Filter):
        # Keep filter chains flat-ish: sink below sibling filters so
        # structural nodes stay adjacent to their constraints.
        node.child = _push_filter(expr, node.child)
        return node
    return Filter(expr, node)


def conjuncts(node: AlgebraNode) -> List[AlgebraNode]:
    """Flatten a Join tree into its conjunct list (filters preserved
    in place on their subtrees)."""
    if isinstance(node, Join):
        return conjuncts(node.left) + conjuncts(node.right)
    return [node]


def algebra_text(node: AlgebraNode, indent: int = 0) -> str:
    """Render a logical tree, one node per line (EXPLAIN surface)."""
    pad = "  " * indent
    line = f"{pad}{node.label()}"
    if isinstance(node, Filter):
        from .serializer import serialize_expression

        line = f"{pad}Filter({serialize_expression(node.expression)})"
    elif isinstance(node, BGP) and node.patterns:
        line = f"{pad}BGP(" + " . ".join(
            " ".join(term.n3() for term in p.as_tuple()) for p in node.patterns
        ) + ")"
    lines = [line]
    for child in node.children():
        lines.append(algebra_text(child, indent + 1))
    return "\n".join(lines)
