"""Operator-level query tracing: spans, traces, and the recorder.

The observability layer *inside* a query, complementing the per-route
latency histograms in :mod:`repro.net.metrics`.  A :class:`QueryTrace`
is a tree of :class:`Span` objects — one per executed plan operator
(plus phase spans for planning, remote calls, and QSM probe batches) —
each carrying monotonic-clock wall time and a small attribute dict:
estimated vs. actual cardinality, batches/rows produced, cache events.

Design constraints, in order:

* **Zero overhead when off.**  Every instrumentation seam follows the
  cost-meter idiom (``charge = meter.charge if meter is not None``):
  a ``tracer=None`` default threads through
  :meth:`~repro.sparql.plan.PlanNode.batches`, and the hot batch loop
  gains nothing but the default argument when tracing is off.  The
  overhead gate lives in ``benchmarks/bench_join_planner.py``.
* **Exact wire round-trip.**  Like
  :class:`~repro.net.metrics.LatencyHistogram`, ``to_dict`` /
  ``from_dict`` are exact inverses (times are rounded to microsecond
  resolution when a trace is finished, so JSON transport loses
  nothing).  Traces travel in the slow-query log and BENCH artifacts.
* **Bounded.**  Span depth and per-parent fan-out are capped
  (:data:`MAX_DEPTH` / :data:`MAX_CHILDREN`); beyond the caps the
  tracer counts drops instead of allocating, so a pathological plan
  cannot turn the trace into the memory hog it is meant to diagnose.

Distributed propagation: an upstream tracer ships its trace id and the
calling span's id as :data:`TRACE_ID_HEADER` / :data:`PARENT_SPAN_HEADER`
HTTP headers (:mod:`repro.net.client` sends, :mod:`repro.net.wsgi`
receives), so a federated query's remote rounds record spans under ONE
trace id across every endpoint.  :meth:`QueryTrace.stitch` grafts the
collected remote traces back under their calling spans.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "MAX_DEPTH",
    "MAX_CHILDREN",
    "new_trace_id",
    "Span",
    "QueryTrace",
    "Tracer",
]

#: HTTP header carrying the trace id across process boundaries.
TRACE_ID_HEADER = "X-Repro-Trace-Id"
#: HTTP header carrying the calling span's id (the remote root's parent).
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"

#: Spans deeper than this are not recorded (drops are counted instead).
MAX_DEPTH = 16
#: A parent holds at most this many child spans.
MAX_CHILDREN = 64

#: Query text stored on a trace is truncated to this many characters.
_QUERY_SNIPPET = 500


def new_trace_id() -> str:
    """A fresh 64-bit hex trace id."""
    return f"{random.getrandbits(64):016x}"


class Span:
    """One timed node in a trace tree.

    ``start_ms`` is the offset from the trace origin and ``wall_ms`` the
    *inclusive* time spent producing this span's output (children's time
    included — the tree rendering makes self-time apparent).  ``attrs``
    holds only JSON-native scalars: for plan operators that is
    ``est`` (the planner's cardinality estimate), ``rows`` and
    ``batches`` (the actuals), and operator-specific keys such as
    ``endpoint`` on remote-call spans or ``hit`` on cache events.
    """

    __slots__ = ("span_id", "name", "start_ms", "wall_ms", "attrs", "children")

    def __init__(
        self,
        span_id: str,
        name: str,
        start_ms: float = 0.0,
        wall_ms: float = 0.0,
        attrs: Optional[Dict[str, object]] = None,
        children: Optional[List["Span"]] = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.start_ms = start_ms
        self.wall_ms = wall_ms
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}
        self.children: List[Span] = children if children is not None else []

    def to_dict(self) -> Dict[str, object]:
        """Compact wire form; empty attrs/children do not travel."""
        document: Dict[str, object] = {
            "id": self.span_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "wall_ms": self.wall_ms,
        }
        if self.attrs:
            document["attrs"] = dict(self.attrs)
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "Span":
        return cls(
            span_id=str(document["id"]),
            name=str(document["name"]),
            start_ms=float(document["start_ms"]),  # type: ignore[arg-type]
            wall_ms=float(document["wall_ms"]),  # type: ignore[arg-type]
            attrs=dict(document.get("attrs", {})),  # type: ignore[arg-type]
            children=[
                cls.from_dict(child)
                for child in document.get("children", [])  # type: ignore[union-attr]
            ],
        )

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))


class QueryTrace:
    """One query execution's span tree plus identifying metadata.

    ``attrs`` carries trace-level facts: ``parent_span`` when this trace
    was started by a remote caller (the stitching key), cache-event
    summaries, dropped-span counts.
    """

    __slots__ = ("trace_id", "query", "wall_ms", "attrs", "spans")

    def __init__(
        self,
        trace_id: str,
        query: str = "",
        wall_ms: float = 0.0,
        attrs: Optional[Dict[str, object]] = None,
        spans: Optional[List[Span]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.query = query
        self.wall_ms = wall_ms
        self.attrs: Dict[str, object] = attrs if attrs is not None else {}
        self.spans: List[Span] = spans if spans is not None else []

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "trace_id": self.trace_id,
            "wall_ms": self.wall_ms,
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.query:
            document["query"] = self.query
        if self.attrs:
            document["attrs"] = dict(self.attrs)
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "QueryTrace":
        return cls(
            trace_id=str(document["trace_id"]),
            query=str(document.get("query", "")),
            wall_ms=float(document.get("wall_ms", 0.0)),  # type: ignore[arg-type]
            attrs=dict(document.get("attrs", {})),  # type: ignore[arg-type]
            spans=[
                Span.from_dict(span)
                for span in document.get("spans", [])  # type: ignore[union-attr]
            ],
        )

    def walk(self) -> Iterator[Span]:
        for span in self.spans:
            yield from span.walk()

    def stitch(self, remote_traces: Iterator[object]) -> int:
        """Graft remote sub-traces under their calling spans.

        Each remote trace (a :class:`QueryTrace` or its dict form,
        e.g. pulled from an endpoint's ``GET /stats/slow``) is attached
        when it shares this trace's id and names one of this trace's
        span ids as its ``parent_span`` — the id the client shipped in
        :data:`PARENT_SPAN_HEADER`.  Returns the number of traces
        grafted; non-matching traces are ignored, so feeding a whole
        slow-query log is safe.
        """
        by_id: Dict[str, Span] = {span.span_id: span for span in self.walk()}
        grafted = 0
        for remote in remote_traces:
            if isinstance(remote, dict):
                remote = QueryTrace.from_dict(remote)
            if not isinstance(remote, QueryTrace):
                continue
            if remote.trace_id != self.trace_id:
                continue
            parent = by_id.get(str(remote.attrs.get("parent_span", "")))
            if parent is None:
                continue
            parent.children.extend(remote.spans)
            grafted += 1
        return grafted


class Tracer:
    """Records one :class:`QueryTrace`; **not** thread-safe (one per
    query execution, like a :class:`~repro.store.triplestore.CostMeter`).

    The recorder keeps an explicit span stack.  Plan execution is
    pull-based, so operator spans cannot nest by ``with``-block
    scoping: :meth:`wrap_batches` instead pushes the operator's span
    around every ``next()`` on its underlying iterator, which both
    accumulates inclusive wall time per pull and makes the stack top
    the correct parent for anything the pull triggers (a child
    operator's first batch, a remote HTTP round, a store probe).
    """

    __slots__ = (
        "trace",
        "max_depth",
        "max_children",
        "_clock",
        "_origin",
        "_stack",
        "_seq",
        "_id_base",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        *,
        parent_span_id: Optional[str] = None,
        query: str = "",
        clock=time.perf_counter,
        max_depth: int = MAX_DEPTH,
        max_children: int = MAX_CHILDREN,
    ) -> None:
        self.trace = QueryTrace(
            trace_id=trace_id or new_trace_id(),
            query=query[:_QUERY_SNIPPET],
        )
        if parent_span_id:
            self.trace.attrs["parent_span"] = parent_span_id
        self.max_depth = max_depth
        self.max_children = max_children
        self._clock = clock
        self._origin = clock()
        self._stack: List[Span] = []
        self._seq = 0
        # Span ids must stay unique across the processes a stitched
        # trace spans; a per-tracer random base plus a local counter is
        # collision-proof enough without coordinating.
        self._id_base = f"{random.getrandbits(32):08x}"

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span (the parent a remote call
        should name in :data:`PARENT_SPAN_HEADER`)."""
        return self._stack[-1].span_id if self._stack else None

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def _open(
        self, name, attrs: Optional[Dict[str, object]] = None
    ) -> Optional[Span]:
        """Allocate a span under the stack top, or ``None`` if bounded.

        ``name`` may be a zero-argument callable producing the name;
        :meth:`finish` resolves those lazily (hot-path spans avoid
        formatting labels while the query runs).
        """
        if len(self._stack) >= self.max_depth:
            self.trace.attrs["dropped_spans"] = (
                int(self.trace.attrs.get("dropped_spans", 0)) + 1
            )
            return None
        siblings = self._stack[-1].children if self._stack else self.trace.spans
        if len(siblings) >= self.max_children:
            self.trace.attrs["dropped_spans"] = (
                int(self.trace.attrs.get("dropped_spans", 0)) + 1
            )
            return None
        self._seq += 1
        span = Span(
            f"{self._id_base}-{self._seq}",
            name,
            start_ms=(self._clock() - self._origin) * 1000.0,
            attrs=attrs,
        )
        siblings.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """A timed section: ``with tracer.span("plan") as sp: ...``.

        Yields the :class:`Span` (or ``None`` when depth/fan-out bounds
        dropped it — callers must tolerate ``None``).  Must not enclose
        a ``yield`` of an outer generator; use :meth:`wrap_batches` for
        streaming work.
        """
        span = self._open(name, attrs or None)
        if span is None:
            yield None
            return
        self._stack.append(span)
        started = self._clock()
        try:
            yield span
        finally:
            span.wall_ms += (self._clock() - started) * 1000.0
            self._stack.pop()

    def event(self, name: str, **attrs) -> Optional[Span]:
        """A zero-duration marker span (cache hit/miss, admission)."""
        return self._open(name, attrs or None)

    # ------------------------------------------------------------------
    # Plan-operator instrumentation
    # ------------------------------------------------------------------

    def wrap_batches(self, node, batches: Iterator) -> Iterator:
        """Wrap an operator's batch stream in its span.

        Called from :meth:`~repro.sparql.plan.PlanNode.batches` only
        when a tracer is threaded through — the ``tracer is None`` path
        never reaches here.  Records the planner's estimate up front
        and the actual rows/batches when the stream ends (including
        early LIMIT-style closes).

        The span's name is stored as the *unevaluated* ``node.label``
        — rendering an operator label means formatting triple-pattern
        text, which is a measurable slice of the per-operator tracing
        cost.  :meth:`finish` resolves it, off the execution path.
        """
        span = self._open(node.label, {"est": node.est_rows})
        if span is None:
            return batches
        return self._traced_batches(span, batches)

    def _traced_batches(self, span: Span, batches: Iterator) -> Iterator:
        stack = self._stack
        clock = self._clock
        rows = 0
        count = 0
        try:
            while True:
                stack.append(span)
                started = clock()
                try:
                    batch = next(batches)
                except StopIteration:
                    return
                finally:
                    span.wall_ms += (clock() - started) * 1000.0
                    stack.pop()
                rows += batch.length
                count += 1
                yield batch
        except GeneratorExit:
            # The consumer stopped early (LIMIT, pagination): close the
            # inner stream now so operator teardown stays deterministic.
            batches.close()
            raise
        finally:
            span.attrs["rows"] = rows
            span.attrs["batches"] = count

    @contextmanager
    def remote_call(self, source, **attrs):
        """A span around one remote endpoint round-trip.

        Sets the trace context (trace id + this span's id) on sources
        that support it — :class:`~repro.net.client.HttpSparqlEndpoint`
        ships both as headers, which is how a federated query's spans
        stitch into one trace across processes.  The context is cleared
        on exit so unrelated queries on the same client stay untraced.
        """
        name = getattr(source, "name", None) or "?"
        span = self._open(f"remote:{name}", {"endpoint": str(name), **attrs})
        if span is None:
            yield None
            return
        setter = getattr(source, "set_trace_context", None)
        if setter is not None:
            setter(self.trace.trace_id, span.span_id)
        self._stack.append(span)
        started = self._clock()
        try:
            yield span
        finally:
            span.wall_ms += (self._clock() - started) * 1000.0
            self._stack.pop()
            if setter is not None:
                setter(None, None)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def finish(self) -> QueryTrace:
        """Stamp total wall time, snap span times to microsecond
        resolution (what makes the dict/JSON round-trip exact), and
        return the trace."""
        trace = self.trace
        trace.wall_ms = round((self._clock() - self._origin) * 1000.0, 3)
        for span in trace.walk():
            if not isinstance(span.name, str):
                span.name = str(span.name())
            span.start_ms = round(span.start_ms, 3)
            span.wall_ms = round(span.wall_ms, 3)
        return trace
