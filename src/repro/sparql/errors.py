"""Exception hierarchy for the SPARQL engine."""

from __future__ import annotations

__all__ = ["SparqlError", "ParseError", "EvaluationError", "ExpressionError"]


class SparqlError(Exception):
    """Base class for all SPARQL engine errors."""


class ParseError(SparqlError):
    """The query text does not conform to the supported grammar."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message if position < 0 else f"{message} (at offset {position})")
        self.position = position


class EvaluationError(SparqlError):
    """The query failed during evaluation (not a timeout)."""


class ExpressionError(SparqlError):
    """An expression raised a SPARQL evaluation error.

    In FILTER position these are swallowed (the row is dropped), matching
    the SPARQL specification's error semantics.
    """
