"""Query result containers.

A :class:`SelectResult` is an ordered list of solution rows with the
projected variable names; an :class:`AskResult` wraps a boolean.  Both
carry the evaluation cost so callers (the endpoint simulator, benchmarks)
can account for work done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..rdf.terms import Term
from ..rdf.triples import Binding

__all__ = ["SelectResult", "AskResult"]


@dataclass
class SelectResult:
    """Result of a SELECT query."""

    variables: List[str]
    rows: List[Binding] = field(default_factory=list)
    cost: int = 0
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, name: str) -> List[Optional[Term]]:
        """All values of variable ``name`` across rows (None when unbound)."""
        return [row.get(name) for row in self.rows]

    def first_value(self, name: Optional[str] = None) -> Optional[Term]:
        """The first row's value for ``name`` (or the single variable)."""
        if not self.rows:
            return None
        key = name if name is not None else self.variables[0]
        return self.rows[0].get(key)

    def to_tuples(self) -> List[tuple]:
        """Rows as tuples ordered by the projected variable list."""
        return [tuple(row.get(v) for v in self.variables) for row in self.rows]

    def value_set(self, name: Optional[str] = None) -> set:
        """Distinct values of one column — handy for answer comparison."""
        key = name if name is not None else self.variables[0]
        return {row.get(key) for row in self.rows if row.get(key) is not None}


@dataclass
class AskResult:
    """Result of an ASK query."""

    value: bool
    cost: int = 0

    def __bool__(self) -> bool:
        return self.value
