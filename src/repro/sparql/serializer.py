"""Serialize AST nodes back to SPARQL text.

The QSM constructs alternative queries by editing ASTs and must show the
user (and send to endpoints) concrete SPARQL; the federated processor
ships sub-queries to endpoints as text.  This module renders the subset
AST losslessly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..rdf.triples import TriplePattern
from .ast_nodes import (
    Aggregate,
    BinaryExpr,
    Expression,
    FunctionCall,
    GraphPattern,
    Query,
    SelectItem,
    TermExpr,
    UnaryExpr,
    ValuesClause,
)

__all__ = ["serialize_query", "serialize_expression", "select_query", "ask_query"]


def serialize_expression(expr: Expression) -> str:
    """Render an expression AST as SPARQL text."""
    if isinstance(expr, TermExpr):
        return expr.term.n3()
    if isinstance(expr, UnaryExpr):
        return f"{expr.op}({serialize_expression(expr.operand)})"
    if isinstance(expr, BinaryExpr):
        return (
            f"({serialize_expression(expr.left)} {expr.op} "
            f"{serialize_expression(expr.right)})"
        )
    if isinstance(expr, FunctionCall):
        args = ", ".join(serialize_expression(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Aggregate):
        inner = "*" if expr.argument is None else serialize_expression(expr.argument)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{inner})"
    raise TypeError(f"cannot serialize expression {expr!r}")


def _values_text(clause: ValuesClause, indent: str) -> str:
    """Render one inline data block (UNDEF for absent cells)."""
    heads = " ".join(f"?{name}" for name in clause.variables)
    rows = " ".join(
        "(" + " ".join("UNDEF" if value is None else value.n3() for value in row) + ")"
        for row in clause.rows
    )
    return f"{indent}VALUES ({heads}) {{ {rows} }}"


def _serialize_group(group: GraphPattern, indent: str = "  ") -> str:
    lines: List[str] = []
    for pattern in group.patterns:
        lines.append(f"{indent}{pattern.n3()}")
    for clause in group.values:
        lines.append(_values_text(clause, indent))
    for branches in group.unions:
        rendered = []
        for branch in branches:
            rendered.append(f"{{\n{_serialize_group(branch, indent + '  ')}\n{indent}}}")
        lines.append(indent + " UNION ".join(rendered))
    for expr in group.filters:
        lines.append(f"{indent}FILTER ({serialize_expression(expr)})")
    for minus in group.minuses:
        lines.append(f"{indent}MINUS {{")
        lines.append(_serialize_group(minus, indent + "  "))
        lines.append(f"{indent}}}")
    for optional in group.optionals:
        lines.append(f"{indent}OPTIONAL {{")
        lines.append(_serialize_group(optional, indent + "  "))
        lines.append(f"{indent}}}")
    return "\n".join(lines)


def _serialize_select_item(item: SelectItem) -> str:
    if isinstance(item.expression, TermExpr) and item.alias is None:
        return item.expression.term.n3()
    return f"({serialize_expression(item.expression)} AS ?{item.output_name})"


def serialize_query(query: Query) -> str:
    """Render a full query AST as SPARQL text."""
    lines: List[str] = []
    if query.form == "ASK":
        lines.append("ASK {")
        lines.append(_serialize_group(query.where))
        lines.append("}")
        return "\n".join(lines)

    head = "SELECT"
    if query.distinct:
        head += " DISTINCT"
    if query.select_star:
        head += " *"
    else:
        head += " " + " ".join(_serialize_select_item(item) for item in query.select_items)
    lines.append(head + " WHERE {")
    lines.append(_serialize_group(query.where))
    lines.append("}")
    if query.group_by:
        lines.append("GROUP BY " + " ".join(f"?{name}" for name in query.group_by))
    if query.order_by:
        parts = []
        for condition in query.order_by:
            rendered = serialize_expression(condition.expression)
            parts.append(f"ASC({rendered})" if condition.ascending else f"DESC({rendered})")
        lines.append("ORDER BY " + " ".join(parts))
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    if query.offset is not None:
        lines.append(f"OFFSET {query.offset}")
    return "\n".join(lines)


def select_query(
    patterns: Sequence[TriplePattern],
    filters: Sequence[Expression] = (),
    distinct: bool = True,
    limit: Optional[int] = None,
) -> Query:
    """Convenience constructor: SELECT * over ``patterns`` with ``filters``."""
    return Query(
        form="SELECT",
        select_star=True,
        distinct=distinct,
        where=GraphPattern(patterns=list(patterns), filters=list(filters)),
        limit=limit,
    )


def ask_query(patterns: Sequence[TriplePattern]) -> Query:
    """Convenience constructor: ASK over ``patterns``."""
    return Query(form="ASK", where=GraphPattern(patterns=list(patterns)))
