"""Triples and triple patterns.

A :class:`Triple` is a ground (subject, predicate, object) statement; a
:class:`TriplePattern` allows variables in any position.  Both share the
same field layout so that a pattern can be matched against a triple by
simple positional comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI, BlankNode, Literal, Term, Variable, is_concrete

__all__ = ["Triple", "TriplePattern", "Binding"]

#: A solution mapping from variable names to ground terms.
Binding = Dict[str, Term]


@dataclass(frozen=True, slots=True)
class Triple:
    """A ground RDF triple.

    Subjects are IRIs or blank nodes, predicates are IRIs, and objects may
    be any ground term.  Construction validates these constraints because a
    malformed triple silently poisons every index built above it.
    """

    subject: Term
    predicate: Term
    object: Term


    def __post_init__(self) -> None:
        if not isinstance(self.subject, (IRI, BlankNode)):
            raise TypeError(f"triple subject must be an IRI or blank node, got {self.subject!r}")
        if not isinstance(self.predicate, IRI):
            raise TypeError(f"triple predicate must be an IRI, got {self.predicate!r}")
        if not isinstance(self.object, (IRI, BlankNode, Literal)):
            raise TypeError(f"triple object must be a ground term, got {self.object!r}")

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self) -> Iterator[Term]:
        return iter(self.as_tuple())


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: any position may be a :class:`Variable`."""

    subject: Term
    predicate: Term
    object: Term


    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> Tuple[str, ...]:
        """Names of the variables appearing in this pattern, in order."""
        return tuple(t.name for t in self.as_tuple() if isinstance(t, Variable))

    def is_ground(self) -> bool:
        return all(is_concrete(t) for t in self.as_tuple())

    def bind(self, binding: Binding) -> "TriplePattern":
        """Substitute bound variables with their values from ``binding``."""

        def subst(term: Term) -> Term:
            if isinstance(term, Variable) and term.name in binding:
                return binding[term.name]
            return term

        return TriplePattern(subst(self.subject), subst(self.predicate), subst(self.object))

    def match(self, triple: Triple) -> Optional[Binding]:
        """Match this pattern against a ground triple.

        Returns the binding extension required for the match, or ``None``
        if the triple does not match.  Repeated variables within the
        pattern must bind consistently (e.g. ``?x :p ?x``).
        """
        binding: Binding = {}
        for pattern_term, ground_term in zip(self.as_tuple(), triple.as_tuple()):
            if isinstance(pattern_term, Variable):
                bound = binding.get(pattern_term.name)
                if bound is None:
                    binding[pattern_term.name] = ground_term
                elif bound != ground_term:
                    return None
            elif pattern_term != ground_term:
                return None
        return binding

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __iter__(self) -> Iterator[Term]:
        return iter(self.as_tuple())
