"""A small N-Triples reader/writer.

Supports the line-oriented N-Triples syntax plus language tags and
datatypes — enough to persist and reload the synthetic datasets, and to
round-trip caches to disk.  Comments (``# ...``) and blank lines are
ignored.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from .terms import IRI, BlankNode, Literal, Term
from .triples import Triple

__all__ = ["parse_ntriples", "serialize_ntriples", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}
            if nxt in mapping:
                out.append(mapping[nxt])
                i += 2
                continue
            if nxt == "u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2:i + 6], 16)))
                i += 6
                continue
        out.append(ch)
        i += 1
    return "".join(out)


class _LineParser:
    """Cursor-based parser for a single N-Triples line."""

    def __init__(self, line: str) -> None:
        self.line = line
        self.pos = 0

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(f"{message} at column {self.pos}: {self.line!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def expect(self, ch: str) -> None:
        if self.at_end() or self.line[self.pos] != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def parse_iri(self) -> IRI:
        self.expect("<")
        end = self.line.find(">", self.pos)
        if end == -1:
            raise self.error("unterminated IRI")
        value = self.line[self.pos:end]
        self.pos = end + 1
        return IRI(value)

    def parse_blank(self) -> BlankNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.line) and (
            self.line[self.pos].isalnum() or self.line[self.pos] in "-_"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BlankNode(self.line[start:self.pos])

    def parse_literal(self) -> Literal:
        self.expect('"')
        out: List[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            ch = self.line[self.pos]
            if ch == "\\":
                if self.pos + 1 >= len(self.line):
                    raise self.error("dangling escape")
                out.append(self.line[self.pos:self.pos + 2])
                self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                break
            out.append(ch)
            self.pos += 1
        lexical = _unescape("".join(out))
        if not self.at_end() and self.line[self.pos] == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.line) and (
                self.line[self.pos].isalnum() or self.line[self.pos] == "-"
            ):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(lexical, lang=self.line[start:self.pos])
        if self.line.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.parse_iri()
            return Literal(lexical, datatype=datatype)
        return Literal(lexical)

    def parse_term(self, *, subject_position: bool = False) -> Term:
        self.skip_ws()
        if self.at_end():
            raise self.error("unexpected end of line")
        ch = self.line[self.pos]
        if ch == "<":
            return self.parse_iri()
        if ch == "_":
            return self.parse_blank()
        if ch == '"':
            if subject_position:
                raise self.error("literal not allowed as subject")
            return self.parse_literal()
        raise self.error(f"unexpected character {ch!r}")


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Yield triples from N-Triples ``text``, skipping comments/blank lines."""
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parser = _LineParser(line)
        try:
            subject = parser.parse_term(subject_position=True)
            predicate = parser.parse_term()
            if not isinstance(predicate, IRI):
                raise parser.error("predicate must be an IRI")
            obj = parser.parse_term()
            parser.skip_ws()
            parser.expect(".")
        except NTriplesError as exc:
            raise NTriplesError(f"line {line_no}: {exc}") from None
        yield Triple(subject, predicate, obj)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize ``triples`` to N-Triples text (one statement per line)."""
    return "\n".join(triple.n3() for triple in triples) + "\n"
