"""RDF term model: IRIs, literals, blank nodes, and variables.

This module provides the vocabulary-level building blocks used everywhere
else in the library.  Terms are immutable, hashable value objects so that
they can serve as keys in the triple-store indexes and as members of
solution bindings.

The design follows the RDF 1.1 abstract syntax:

* :class:`IRI` — an absolute or prefixed resource identifier.
* :class:`Literal` — a lexical form, optionally tagged with a language
  (``"Boston"@en``) or a datatype IRI (``"42"^^xsd:integer``).
* :class:`BlankNode` — a scoped anonymous node.
* :class:`Variable` — a SPARQL query variable (``?x``).  Variables are not
  RDF terms proper, but modelling them alongside the terms keeps triple
  *patterns* and concrete triples structurally identical, which simplifies
  the query engine considerably.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
    "is_concrete",
    "fresh_blank_node",
    "flatten_term",
    "unflatten_term",
]


class Term:
    """Common base class for all RDF terms and query variables.

    The base class is intentionally behaviour-free; it exists so that
    signatures can say ``Term`` and isinstance checks can distinguish
    "anything RDF-shaped" from plain Python values.
    """


    def n3(self) -> str:
        """Render the term in N-Triples/SPARQL surface syntax."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class IRI(Term):
    """An RDF IRI (resource identifier).

    The ``value`` holds the full IRI string, e.g.
    ``http://dbpedia.org/ontology/almaMater``.
    """

    value: str


    def n3(self) -> str:
        return f"<{self.value}>"

    def local_name(self) -> str:
        """Return the part after the last ``#`` or ``/`` separator.

        This is the human-meaningful fragment Sapphire matches keywords
        against (e.g. ``almaMater`` for the IRI above).
        """
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value


#: Well-known XSD datatype IRIs used by the literal model and the
#: SPARQL expression evaluator.
XSD_STRING = IRI("http://www.w3.org/2001/XMLSchema#string")
XSD_INTEGER = IRI("http://www.w3.org/2001/XMLSchema#integer")
XSD_DECIMAL = IRI("http://www.w3.org/2001/XMLSchema#decimal")
XSD_DOUBLE = IRI("http://www.w3.org/2001/XMLSchema#double")
XSD_BOOLEAN = IRI("http://www.w3.org/2001/XMLSchema#boolean")


@dataclass(frozen=True, slots=True)
class Literal(Term):
    """An RDF literal: a lexical form plus optional language or datatype.

    Per RDF 1.1 a literal has *either* a language tag (in which case its
    datatype is ``rdf:langString``) *or* a datatype IRI, never both.  We
    enforce that in ``__post_init__``.

    Examples::

        Literal("New York", lang="en")
        Literal("8175133", datatype=XSD_INTEGER)
        Literal("plain string")          # simple literal (xsd:string)
    """

    lexical: str
    lang: Optional[str] = None
    datatype: Optional[IRI] = None


    def __post_init__(self) -> None:
        # Empty-string tags normalize to "absent" so that
        # Literal("x", lang="") and Literal("x") are the *same* value —
        # the flat persisted representation uses "" for absent and could
        # not tell them apart otherwise.
        if self.lang == "":
            object.__setattr__(self, "lang", None)
        if self.datatype is not None and self.datatype.value == "":
            object.__setattr__(self, "datatype", None)
        if self.lang is not None and self.datatype is not None:
            raise ValueError("a literal cannot carry both a language tag and a datatype")

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        if self.lang:
            return f'"{escaped}"@{self.lang}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^{self.datatype.n3()}'
        return f'"{escaped}"'

    def is_numeric(self) -> bool:
        """True when the datatype is one of the XSD numeric types."""
        return self.datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE)

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to the closest native Python value.

        Falls back to the raw lexical form when the datatype is unknown or
        the lexical form does not parse, mirroring SPARQL's tolerant
        treatment of ill-formed literals in non-arithmetic positions.
        """
        try:
            if self.datatype == XSD_INTEGER:
                return int(self.lexical)
            if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
                return float(self.lexical)
            if self.datatype == XSD_BOOLEAN:
                return self.lexical.strip().lower() in ("true", "1")
        except ValueError:
            return self.lexical
        return self.lexical

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.lexical


_blank_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class BlankNode(Term):
    """An anonymous RDF node, identified by a label scoped to one graph."""

    label: str


    def n3(self) -> str:
        return f"_:{self.label}"


def fresh_blank_node(prefix: str = "b") -> BlankNode:
    """Mint a blank node with a process-unique label."""
    return BlankNode(f"{prefix}{next(_blank_counter)}")


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A SPARQL variable such as ``?uri``.  ``name`` excludes the ``?``."""

    name: str


    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"?{self.name}"


def is_concrete(term: Term) -> bool:
    """True when ``term`` is a ground RDF term (not a variable)."""
    return not isinstance(term, Variable)


# ----------------------------------------------------------------------
# Flat (kind, lexical, lang, datatype) tuples for term persistence
# ----------------------------------------------------------------------
#
# Persistent backends store one row per dictionary entry.  Language and
# datatype use "" (never NULL/None) so that a relational UNIQUE constraint
# over the four columns deduplicates correctly — SQL treats NULLs as
# pairwise distinct, which would silently allow duplicate terms.

#: Kind codes used in the flat representation (and the SQLite ``terms``
#: table).  Variables are deliberately unsupported: only ground terms are
#: ever stored.
KIND_IRI, KIND_LITERAL, KIND_BLANK = 0, 1, 2


def flatten_term(term: Term) -> tuple:
    """``term`` as a ``(kind, lexical, lang, datatype)`` row."""
    if isinstance(term, IRI):
        return (KIND_IRI, term.value, "", "")
    if isinstance(term, Literal):
        return (KIND_LITERAL, term.lexical, term.lang or "",
                term.datatype.value if term.datatype else "")
    if isinstance(term, BlankNode):
        return (KIND_BLANK, term.label, "", "")
    raise TypeError(f"cannot flatten non-ground term {term!r}")


def unflatten_term(kind: int, lexical: str, lang: str, datatype: str) -> Term:
    """Inverse of :func:`flatten_term`."""
    if kind == KIND_IRI:
        return IRI(lexical)
    if kind == KIND_LITERAL:
        return Literal(lexical, lang=lang or None,
                       datatype=IRI(datatype) if datatype else None)
    if kind == KIND_BLANK:
        return BlankNode(lexical)
    raise ValueError(f"unknown term kind code {kind!r}")
