"""Namespace and prefix management.

A :class:`Namespace` is a convenience factory for IRIs that share a common
base (``DBO = Namespace("http://dbpedia.org/ontology/"); DBO.almaMater``).
A :class:`PrefixRegistry` maps prefixes to namespaces for the SPARQL parser
and for compact serialization, and ships with the prefixes every module in
this library relies on (rdf:, rdfs:, owl:, xsd:, plus the DBpedia-style
prefixes used by the synthetic dataset).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI

__all__ = [
    "Namespace",
    "PrefixRegistry",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "DBO",
    "DBR",
    "DBP",
    "FOAF",
    "RDF_TYPE",
    "RDFS_LABEL",
    "RDFS_SUBCLASSOF",
    "OWL_CLASS",
    "default_registry",
]


class Namespace:
    """An IRI prefix that manufactures full IRIs via attribute access."""

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        """Build the IRI for ``local`` under this namespace."""
        return IRI(self._base + local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DBO = Namespace("http://dbpedia.org/ontology/")
DBR = Namespace("http://dbpedia.org/resource/")
DBP = Namespace("http://dbpedia.org/property/")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: Frequently used individual IRIs.
RDF_TYPE = RDF.term("type")
RDFS_LABEL = RDFS.term("label")
RDFS_SUBCLASSOF = RDFS.term("subClassOf")
OWL_CLASS = OWL.term("Class")


class PrefixRegistry:
    """Bidirectional prefix <-> namespace mapping.

    Used by the SPARQL parser to expand ``dbo:almaMater`` and by
    serializers to compact IRIs for display.
    """

    def __init__(self) -> None:
        self._by_prefix: Dict[str, str] = {}

    def bind(self, prefix: str, base: str) -> None:
        """Register (or re-register) ``prefix`` for namespace ``base``."""
        self._by_prefix[prefix] = base

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name such as ``dbo:almaMater`` to a full IRI."""
        if ":" not in qname:
            raise KeyError(f"not a prefixed name: {qname!r}")
        prefix, local = qname.split(":", 1)
        try:
            base = self._by_prefix[prefix]
        except KeyError:
            raise KeyError(f"unknown prefix {prefix!r} in {qname!r}") from None
        return IRI(base + local)

    def compact(self, iri: IRI) -> Optional[str]:
        """Compact ``iri`` to ``prefix:local`` if a prefix covers it.

        Prefers the longest matching namespace so that overlapping bases
        (e.g. ``xsd:`` inside a broader base) compact correctly.
        """
        best: Optional[Tuple[str, str]] = None
        for prefix, base in self._by_prefix.items():
            if iri.value.startswith(base):
                if best is None or len(base) > len(best[1]):
                    best = (prefix, base)
        if best is None:
            return None
        prefix, base = best
        local = iri.value[len(base):]
        if "/" in local or "#" in local:
            return None
        return f"{prefix}:{local}"

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._by_prefix.items())

    def copy(self) -> "PrefixRegistry":
        clone = PrefixRegistry()
        clone._by_prefix.update(self._by_prefix)
        return clone


def default_registry() -> PrefixRegistry:
    """A registry pre-populated with the prefixes used across the library."""
    registry = PrefixRegistry()
    registry.bind("rdf", RDF.base)
    registry.bind("rdfs", RDFS.base)
    registry.bind("owl", OWL.base)
    registry.bind("xsd", XSD.base)
    registry.bind("dbo", DBO.base)
    registry.bind("res", DBR.base)
    registry.bind("dbr", DBR.base)
    registry.bind("dbp", DBP.base)
    registry.bind("foaf", FOAF.base)
    return registry
