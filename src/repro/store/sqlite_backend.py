"""Persistent SQLite storage backend.

Stores the term dictionary and the ID triples of one
:class:`~repro.store.triplestore.TripleStore` in a single SQLite file so
datasets survive restarts (initialization "happens only once for each
endpoint" — Section 5.1 — and took 17 hours for DBpedia, so re-ingesting
on every boot is not an option at production scale).

Schema (documented in full in ``docs/storage.md``)::

    terms(id INTEGER PRIMARY KEY, kind INTEGER, lexical TEXT,
          lang TEXT, datatype TEXT)          -- the dictionary, dense IDs
    triples(s INTEGER, p INTEGER, o INTEGER,
            PRIMARY KEY (s, p, o)) WITHOUT ROWID   -- the SPO index
    idx_triples_pos(p, o, s)                 -- covering POS index
    idx_triples_osp(o, s, p)                 -- covering OSP index

The three B-trees mirror the memory backend's three hash indexes: every
one of the eight triple-pattern shapes is answered by a prefix range scan
of exactly one covering index, so SQLite never touches the base table
twice.

Pragmas applied at connection time:

======================  ========  ==============================================
Pragma                  Value     Purpose
======================  ========  ==============================================
``journal_mode``        WAL       readers never block the writer across restarts
``synchronous``         NORMAL    fsync at WAL checkpoints only (safe with WAL)
``foreign_keys``        ON        referential integrity for future tables
``busy_timeout``        30000 ms  wait for a locked database instead of failing
``temp_store``          MEMORY    sorts/temp B-trees stay off disk
======================  ========  ==============================================

Thread safety: the endpoint simulator serves QSM prefetches from
background threads, so the single connection is shared behind a lock and
every query materializes its rows before yielding.

Single-writer assumption: one live backend instance per database file.
WAL lets a *second* process read concurrently (and a fresh open sees all
committed writes), but a long-lived second instance caches the triple
count and dictionary at open time, so its ``size()`` and term IDs lag
behind another writer's commits.
"""

from __future__ import annotations

import sqlite3
import threading
from array import array
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union
from urllib.parse import quote

from ..rdf.terms import Term, flatten_term, unflatten_term
from .dictionary import TermDictionary

__all__ = ["SQLiteBackend"]

IdTriple = Tuple[int, int, int]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS terms (
    id       INTEGER PRIMARY KEY,
    kind     INTEGER NOT NULL,
    lexical  TEXT NOT NULL,
    lang     TEXT NOT NULL DEFAULT '',
    datatype TEXT NOT NULL DEFAULT '',
    UNIQUE (kind, lexical, lang, datatype)
);
CREATE TABLE IF NOT EXISTS triples (
    s INTEGER NOT NULL,
    p INTEGER NOT NULL,
    o INTEGER NOT NULL,
    PRIMARY KEY (s, p, o)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_triples_pos ON triples (p, o, s);
CREATE INDEX IF NOT EXISTS idx_triples_osp ON triples (o, s, p);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA foreign_keys=ON",
    "PRAGMA busy_timeout=30000",
    "PRAGMA temp_store=MEMORY",
)


class SQLiteBackend:
    """ID-triple storage in one SQLite database file.

    ``path`` may be ``":memory:"`` for an ephemeral database (useful in
    tests: same code path, no file).  Opening an existing file replays
    its ``terms`` table into the in-memory dictionary, so encode/decode
    stay O(1) dict/list operations; only triple probes hit SQLite.
    """

    name = "sqlite"

    def __init__(
        self, path: Union[str, Path] = ":memory:", *, read_only: bool = False
    ) -> None:
        self.path = str(path)
        self.read_only = read_only
        self._lock = threading.Lock()
        if read_only:
            # Snapshot-reader mode (the pre-fork workers' replica
            # discipline, docs/server.md): open an existing WAL file
            # with mode=ro — WAL lets any number of such readers run
            # concurrently with one writer in another process.  No
            # schema DDL, no WAL pragma (both would write); terms
            # interned at runtime stay memory-only instead of being
            # persisted, so the on-disk dictionary is never touched.
            if self.path == ":memory:":
                raise ValueError("read_only requires an existing database file")
            uri = "file:" + quote(str(Path(self.path).absolute())) + "?mode=ro"
            self._conn = sqlite3.connect(uri, uri=True, check_same_thread=False)
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute("PRAGMA temp_store=MEMORY")
            self.dictionary = TermDictionary()
        else:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            for pragma in _PRAGMAS:
                self._conn.execute(pragma)
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
            self.dictionary = TermDictionary(on_intern=self._persist_term)
        self._load_terms()
        self._size = self._conn.execute("SELECT COUNT(*) FROM triples").fetchone()[0]
        # Per-predicate triple counts, rebuilt lazily after mutations so
        # planning estimates stay index-free (see estimate_ids).
        self._pred_counts: Optional[Dict[int, int]] = None
        # Per-predicate (count, distinct s, distinct o) for the planner,
        # same lazy-rebuild policy.
        self._pstats: Optional[Dict[int, Tuple[int, int, int]]] = None
        # Columnar scan cache: (s, p, o, positions) -> tuple of ID
        # arrays.  Full-pattern scans repeat constantly (QSM probes,
        # planner-driven joins), and re-fetching them through sqlite3
        # re-boxes every row into a Python tuple; serving array slices
        # out of this cache is the SQLite half of the batched executor.
        # Cleared on any mutation.
        self._col_cache: Dict[Tuple, Tuple[array, ...]] = {}

    # -- dictionary persistence ---------------------------------------

    def _load_terms(self) -> None:
        rows = self._conn.execute(
            "SELECT id, kind, lexical, lang, datatype FROM terms ORDER BY id"
        ).fetchall()
        for term_id, kind, lexical, lang, datatype in rows:
            self.dictionary.restore(term_id, unflatten_term(kind, lexical, lang, datatype))

    def _persist_term(self, term_id: int, term: Term) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO terms (id, kind, lexical, lang, datatype) VALUES (?, ?, ?, ?, ?)",
                (term_id, *flatten_term(term)),
            )

    # -- mutation ------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", (s, p, o)
            )
            added = cursor.rowcount > 0
            if added:
                self._size += 1
                self._pred_counts = None
                self._pstats = None
                self._col_cache.clear()
            self._conn.commit()
        return added

    #: Rows per executemany batch when bulk-loading; keeps memory flat
    #: on million-triple ingests instead of materializing the iterable.
    _INGEST_BATCH = 10_000

    def add_many(self, triples: Iterable[IdTriple]) -> int:
        from itertools import islice

        total_added = 0
        iterator = iter(triples)
        while True:
            # Pull the chunk outside the lock: the generator typically
            # interns terms as a side effect, which needs the lock too.
            chunk = list(islice(iterator, self._INGEST_BATCH))
            if not chunk:
                break
            with self._lock:
                before = self._conn.total_changes
                self._conn.executemany(
                    "INSERT OR IGNORE INTO triples (s, p, o) VALUES (?, ?, ?)", chunk
                )
                added = self._conn.total_changes - before
                if added:
                    self._size += added
                    self._pred_counts = None
                    self._pstats = None
                    self._col_cache.clear()
                self._conn.commit()
            total_added += added
        return total_added

    def remove(self, s: int, p: int, o: int) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM triples WHERE s = ? AND p = ? AND o = ?", (s, p, o)
            )
            removed = cursor.rowcount > 0
            if removed:
                self._size -= 1
                self._pred_counts = None
                self._pstats = None
                self._col_cache.clear()
            self._conn.commit()
        return removed

    # -- lookup --------------------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        row = self._query_one(
            "SELECT 1 FROM triples WHERE s = ? AND p = ? AND o = ?", (s, p, o)
        )
        return row is not None

    def size(self) -> int:
        return self._size

    def iter_ids(self) -> Iterator[IdTriple]:
        yield from self._stream("SELECT s, p, o FROM triples")

    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[IdTriple]:
        where, params = _where_clause(s, p, o)
        yield from self._stream(f"SELECT s, p, o FROM triples{where}", params)

    def match_columns(
        self,
        s: Optional[int],
        p: Optional[int],
        o: Optional[int],
        positions: Sequence[int],
        batch_size: int = 1024,
    ) -> Iterator[Tuple[array, ...]]:
        """Columnar scan: fetched rows transposed into cached ID arrays.

        Only the requested wildcard ``positions`` appear in the SELECT
        list, so each shape stays a covering-index prefix range.  Full
        scans (``batch_size`` at least the default) are fetched in one
        ``fetchall``, transposed once, and memoized in ``_col_cache`` —
        repeat scans of the same pattern (QSM probes, benchmark reruns,
        join rebuilds) hand out array slices without re-boxing rows.
        Small batch sizes signal an early-terminating consumer (LIMIT
        pages), which streams via ``fetchmany`` and skips the cache.
        """
        if not positions:
            raise ValueError("match_columns needs at least one position")
        if any((s, p, o)[pos] is not None for pos in positions):
            raise ValueError("match_columns positions must be wildcards")
        single = len(positions) == 1
        key = (s, p, o, tuple(positions))
        cols = self._col_cache.get(key)
        if cols is not None:
            for start in range(0, len(cols[0]), batch_size):
                stop = start + batch_size
                yield tuple(col[start:stop] for col in cols)
            return
        where, params = _where_clause(s, p, o)
        select = ", ".join("spo"[pos] for pos in positions)
        if batch_size >= 1024:
            with self._lock:
                rows = self._conn.execute(
                    f"SELECT {select} FROM triples{where}", params
                ).fetchall()
            if single:
                cols = (array("q", (row[0] for row in rows)),)
            elif rows:
                cols = tuple(array("q", col) for col in zip(*rows))
            else:
                cols = tuple(array("q") for _ in positions)
            if len(self._col_cache) >= 128:
                self._col_cache.clear()
            self._col_cache[key] = cols
            for start in range(0, len(cols[0]), batch_size):
                stop = start + batch_size
                yield tuple(col[start:stop] for col in cols)
            return
        with self._lock:
            cursor = self._conn.execute(
                f"SELECT {select} FROM triples{where}", params
            )
        while True:
            with self._lock:
                rows = cursor.fetchmany(batch_size)
            if not rows:
                return
            if single:
                yield (array("q", (row[0] for row in rows)),)
            else:
                yield tuple(array("q", col) for col in zip(*rows))

    def count_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        where, params = _where_clause(s, p, o)
        row = self._query_one(f"SELECT COUNT(*) FROM triples{where}", params)
        return row[0] if row else 0

    def estimate_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        # Planning calls this meter-free and often, so the unselective
        # shapes must not walk index leaves: the all-wildcard shape uses
        # the cached size and the predicate-only shape (a scan of every
        # triple with that predicate if COUNTed) uses the cached per-
        # predicate fan-outs.  The remaining shapes COUNT(*) a narrow
        # covering-index prefix range, bounded by the matching rows of a
        # selective key — the same O(fan-out) the memory backend pays.
        if s is None and p is None and o is None:
            return self._size
        if s is None and p is not None and o is None:
            return self.predicate_fanouts().get(p, 0)
        if s is not None and p is not None and o is not None:
            return 1
        return self.count_ids(s, p, o)

    # -- aggregates ----------------------------------------------------

    def subject_ids(self) -> Iterator[int]:
        return (row[0] for row in self._query_all("SELECT DISTINCT s FROM triples"))

    def subject_count(self) -> int:
        row = self._query_one("SELECT COUNT(DISTINCT s) FROM triples")
        return row[0] if row else 0

    def predicate_ids(self) -> Iterator[int]:
        return (row[0] for row in self._query_all("SELECT DISTINCT p FROM triples"))

    def object_ids(self) -> Iterator[int]:
        return (row[0] for row in self._query_all("SELECT DISTINCT o FROM triples"))

    def predicate_fanouts(self) -> Dict[int, int]:
        if self._pred_counts is None:
            self._pred_counts = dict(
                self._query_all("SELECT p, COUNT(*) FROM triples GROUP BY p")
            )
        return self._pred_counts

    def predicate_stats(self) -> Dict[int, Tuple[int, int, int]]:
        """Per-predicate ``(count, distinct subjects, distinct objects)``.

        One grouped aggregate over the POS covering index, cached until
        the next mutation — the planner asks for these on every query.
        """
        if self._pstats is None:
            self._pstats = {
                p: (count, n_s, n_o)
                for p, count, n_s, n_o in self._query_all(
                    "SELECT p, COUNT(*), COUNT(DISTINCT s), COUNT(DISTINCT o) "
                    "FROM triples GROUP BY p"
                )
            }
        return self._pstats

    def object_fanouts(self) -> Dict[int, int]:
        return dict(self._query_all("SELECT o, COUNT(*) FROM triples GROUP BY o"))

    def in_degree(self, o: int) -> int:
        row = self._query_one("SELECT COUNT(*) FROM triples WHERE o = ?", (o,))
        return row[0] if row else 0

    def out_degree(self, s: int) -> int:
        row = self._query_one("SELECT COUNT(*) FROM triples WHERE s = ?", (s,))
        return row[0] if row else 0

    def out_edges(self, s: int) -> Iterator[Tuple[int, int]]:
        yield from self._query_all("SELECT p, o FROM triples WHERE s = ?", (s,))

    def in_edges(self, o: int) -> Iterator[Tuple[int, int]]:
        yield from self._query_all("SELECT s, p FROM triples WHERE o = ?", (o,))

    # -- metadata ------------------------------------------------------

    def get_meta(self, key: str) -> Optional[str]:
        """Read a metadata value (e.g. the dataset fingerprint)."""
        row = self._query_one("SELECT value FROM meta WHERE key = ?", (key,))
        return row[0] if row else None

    def set_meta(self, key: str, value: str) -> None:
        """Write a metadata value, replacing any previous one."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
            )
            self._conn.commit()

    def meta_items(self) -> Dict[str, str]:
        return dict(self._query_all("SELECT key, value FROM meta"))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    # -- internals -----------------------------------------------------

    def _query_all(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        # Materialize under the lock: cursors must not be iterated lazily
        # while other threads write through the same connection.
        with self._lock:
            return self._conn.execute(sql, params).fetchall()

    #: Rows fetched per lock acquisition when streaming scans.
    _STREAM_BATCH = 1024

    def _stream(self, sql: str, params: Tuple = ()) -> Iterator[Tuple]:
        """Yield rows in batches, holding the lock only per batch.

        Match/scan results must stream so a tripped cost budget aborts
        the scan (and a million-row store never materializes whole),
        while the lock still serializes cursor access against writers on
        the shared connection.
        """
        with self._lock:
            cursor = self._conn.execute(sql, params)
        while True:
            with self._lock:
                batch = cursor.fetchmany(self._STREAM_BATCH)
            if not batch:
                return
            yield from batch

    def _query_one(self, sql: str, params: Tuple = ()) -> Optional[Tuple]:
        with self._lock:
            return self._conn.execute(sql, params).fetchone()


def _where_clause(
    s: Optional[int], p: Optional[int], o: Optional[int]
) -> Tuple[str, Tuple]:
    clauses = [f"{column} = ?" for column, value in
               (("s", s), ("p", p), ("o", o)) if value is not None]
    params = tuple(value for value in (s, p, o) if value is not None)
    if not clauses:
        return "", ()
    return " WHERE " + " AND ".join(clauses), params
