"""Hash-partitioned storage: one :class:`StorageBackend` over N shards.

:class:`ShardedBackend` implements the full backend protocol by routing
every triple to one of N child backends by **subject ID** —
``shard = s % n_shards`` — and aggregating the read/estimate surface
across shards.  The children are ordinary
:class:`~repro.store.backends.MemoryBackend` /
:class:`~repro.store.sqlite_backend.SQLiteBackend` instances; they never
know they are shards.

Partitioning by subject buys three properties the layers above lean on:

* **Subject-bound shapes stay single-shard.**  ``(s, *, *)``,
  ``(s, p, *)``, ``(s, *, o)`` and full-triple probes — the shapes bind
  joins hammer — touch exactly one child, so a sharded store answers
  them with zero fan-out overhead.
* **Subject sets are disjoint across shards.**  ``subject_ids`` is a
  plain concatenation, ``subject_count`` a plain sum, and the
  per-predicate *distinct-subject* statistic merges **exactly** by
  addition.  Distinct-object counts are not disjoint, so their merged
  value is an upper bound (still capped by the exact triple count) —
  fine for the cost model, which only ranks candidates.
* **Scatter-gather scans stream.**  Wildcard-subject ``match_ids`` /
  ``match_columns`` chain the shards in shard order; within a shard the
  child's own enumeration order holds, so the row-at-a-time and
  columnar pipelines cut LIMIT/DISTINCT pages over the same order.

One dictionary, owned by shard 0
--------------------------------
All children share ONE :class:`~repro.store.dictionary.TermDictionary`
(IDs must mean the same term on every shard).  For memory children the
dictionary object is literally shared; for SQLite children shard 0's
dictionary is the canonical one and its ``terms`` table is the only one
populated — reopening a sharded SQLite layout therefore opens shard 0
first and hands its dictionary to the façade.  Metadata follows the same
rule: shard 0 owns the ``meta`` table.

Layout on disk: :func:`shard_path` derives ``store.sqlite`` →
``store.sqlite.shard0``, ``store.sqlite.shard1``, … so a sharded layout
is self-describing next to the unsharded file it replaces.
"""

from __future__ import annotations

from array import array
from itertools import islice
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .backends import COLUMN_BATCH_SIZE, MemoryBackend, StorageBackend
from .dictionary import TermDictionary

__all__ = ["ShardedBackend", "shard_path", "create_sharded_backend"]

IdTriple = Tuple[int, int, int]


def shard_path(base: Union[str, Path], shard: int) -> str:
    """The per-shard database path for a base storage path.

    ``":memory:"`` maps to itself — each sqlite3 connect of ``:memory:``
    creates an independent database, which is exactly one shard.
    """
    base = str(base)
    if base == ":memory:":
        return base
    return f"{base}.shard{shard}"


class ShardedBackend:
    """The :class:`StorageBackend` protocol over hash-partitioned shards.

    ``shards`` must share one dictionary (see the module docstring); the
    façade exposes ``shards[0].dictionary`` as its own.  A single-shard
    instance is protocol-identical to its child (useful as the
    degenerate case in parity tests).
    """

    name = "sharded"

    def __init__(self, shards: Sequence[StorageBackend]) -> None:
        if not shards:
            raise ValueError("ShardedBackend needs at least one shard")
        self.shards: List[StorageBackend] = list(shards)
        self.n_shards = len(self.shards)
        self.dictionary: TermDictionary = self.shards[0].dictionary

    def shard_of(self, s: int) -> int:
        """The shard index owning subject ID ``s``."""
        return s % self.n_shards

    def shard_sizes(self) -> List[int]:
        """Per-shard triple counts (the ``/stats`` shard-depth view)."""
        return [shard.size() for shard in self.shards]

    # -- mutation ------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        return self.shards[s % self.n_shards].add(s, p, o)

    #: Triples buffered per shard before flushing during bulk ingest.
    _INGEST_BATCH = 10_000

    def add_many(self, triples: Iterable[IdTriple]) -> int:
        """Bulk ingest: partition into per-shard runs, flush in batches.

        Chunked like the SQLite backend's ingest so a million-triple
        generator never materializes whole; each flush hits one child's
        own ``add_many`` (one transaction per shard per chunk).
        """
        added = 0
        iterator = iter(triples)
        n = self.n_shards
        while True:
            chunk = list(islice(iterator, self._INGEST_BATCH))
            if not chunk:
                return added
            runs: List[List[IdTriple]] = [[] for _ in range(n)]
            for triple in chunk:
                runs[triple[0] % n].append(triple)
            for shard, run in zip(self.shards, runs):
                if run:
                    added += shard.add_many(iter(run))

    def remove(self, s: int, p: int, o: int) -> bool:
        return self.shards[s % self.n_shards].remove(s, p, o)

    # -- lookup --------------------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        return self.shards[s % self.n_shards].contains(s, p, o)

    def size(self) -> int:
        return sum(shard.size() for shard in self.shards)

    def iter_ids(self) -> Iterator[IdTriple]:
        for shard in self.shards:
            yield from shard.iter_ids()

    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[IdTriple]:
        if s is not None:
            yield from self.shards[s % self.n_shards].match_ids(s, p, o)
            return
        for shard in self.shards:
            yield from shard.match_ids(s, p, o)

    def match_columns(
        self,
        s: Optional[int],
        p: Optional[int],
        o: Optional[int],
        positions: Sequence[int],
        batch_size: int = COLUMN_BATCH_SIZE,
    ) -> Iterator[Tuple[array, ...]]:
        """Scatter-gather columnar scan: shard streams, concatenated.

        Batches from shard *k* are exhausted before shard *k+1* starts —
        the same shard order ``match_ids`` uses, so both pipelines see
        one enumeration order.  Batches may run ragged at shard
        boundaries (consumers only rely on batch length).
        """
        if s is not None:
            yield from self.shards[s % self.n_shards].match_columns(
                s, p, o, positions, batch_size
            )
            return
        for shard in self.shards:
            yield from shard.match_columns(s, p, o, positions, batch_size)

    def count_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        if s is not None:
            return self.shards[s % self.n_shards].count_ids(s, p, o)
        return sum(shard.count_ids(s, p, o) for shard in self.shards)

    def estimate_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        if s is not None:
            return self.shards[s % self.n_shards].estimate_ids(s, p, o)
        return sum(shard.estimate_ids(s, p, o) for shard in self.shards)

    # -- aggregates ----------------------------------------------------

    def subject_ids(self) -> Iterator[int]:
        # Disjoint by construction: plain concatenation, no dedupe.
        for shard in self.shards:
            yield from shard.subject_ids()

    def subject_count(self) -> int:
        return sum(shard.subject_count() for shard in self.shards)

    def predicate_ids(self) -> Iterator[int]:
        seen = set()
        for shard in self.shards:
            for p in shard.predicate_ids():
                if p not in seen:
                    seen.add(p)
                    yield p

    def object_ids(self) -> Iterator[int]:
        seen = set()
        for shard in self.shards:
            for o in shard.object_ids():
                if o not in seen:
                    seen.add(o)
                    yield o

    def predicate_fanouts(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for shard in self.shards:
            for p, count in shard.predicate_fanouts().items():
                merged[p] = merged.get(p, 0) + count
        return merged

    def predicate_stats(self) -> Dict[int, Tuple[int, int, int]]:
        """Predicate-aware merge of per-shard ``(count, n_s, n_o)``.

        Counts and distinct subjects add exactly (subjects are
        partitioned); distinct objects add to an upper bound, capped by
        the exact count so the estimate never claims more distinct
        objects than triples.
        """
        merged: Dict[int, Tuple[int, int, int]] = {}
        for shard in self.shards:
            for p, (count, n_s, n_o) in shard.predicate_stats().items():
                prev = merged.get(p)
                if prev is None:
                    merged[p] = (count, n_s, n_o)
                else:
                    merged[p] = (prev[0] + count, prev[1] + n_s, prev[2] + n_o)
        return {
            p: (count, n_s, min(n_o, count))
            for p, (count, n_s, n_o) in merged.items()
        }

    def object_fanouts(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for shard in self.shards:
            for o, count in shard.object_fanouts().items():
                merged[o] = merged.get(o, 0) + count
        return merged

    def in_degree(self, o: int) -> int:
        return sum(shard.in_degree(o) for shard in self.shards)

    def out_degree(self, s: int) -> int:
        return self.shards[s % self.n_shards].out_degree(s)

    def out_edges(self, s: int) -> Iterator[Tuple[int, int]]:
        return self.shards[s % self.n_shards].out_edges(s)

    def in_edges(self, o: int) -> Iterator[Tuple[int, int]]:
        for shard in self.shards:
            yield from shard.in_edges(o)

    # -- metadata (shard 0 owns it, like the dictionary) ---------------

    def get_meta(self, key: str) -> Optional[str]:
        return self.shards[0].get_meta(key)

    def set_meta(self, key: str, value: str) -> None:
        self.shards[0].set_meta(key, value)

    def meta_items(self) -> Dict[str, str]:
        return self.shards[0].meta_items()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()


def create_sharded_backend(
    n_shards: int,
    storage: str = "memory",
    path: Optional[Union[str, Path]] = None,
    *,
    read_only: bool = False,
) -> ShardedBackend:
    """Build a sharded backend over ``n_shards`` fresh children.

    ``storage`` is ``"memory"`` (children share one dictionary object)
    or ``"sqlite"`` (children live at ``shard_path(path, i)``; shard 0's
    file carries the dictionary and metadata).  ``read_only`` opens
    SQLite children as WAL snapshot readers — the pre-fork workers'
    replica discipline.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if storage == "memory":
        dictionary = TermDictionary()
        children: List[StorageBackend] = [
            MemoryBackend(dictionary) for _ in range(n_shards)
        ]
    elif storage == "sqlite":
        from .sqlite_backend import SQLiteBackend

        base = ":memory:" if path is None else path
        children = [
            SQLiteBackend(shard_path(base, i), read_only=read_only)
            for i in range(n_shards)
        ]
    else:
        raise ValueError(f"unknown storage backend {storage!r}")
    return ShardedBackend(children)
