"""Triple-store substrate: indexed storage, cost metering, statistics."""

from .stats import DatasetStats, compute_stats
from .triplestore import CostMeter, QueryAborted, TripleStore

__all__ = ["TripleStore", "CostMeter", "QueryAborted", "DatasetStats", "compute_stats"]
