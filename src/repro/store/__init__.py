"""Triple-store substrate: dictionary encoding, pluggable backends,
cost metering, statistics.

Layering (bottom up): :class:`TermDictionary` interns terms to dense
integer IDs; a :class:`StorageBackend` (:class:`MemoryBackend` or
:class:`SQLiteBackend`) stores and indexes the ID triples;
:class:`TripleStore` is the term-level façade the rest of the system
talks to.  See ``docs/storage.md``.
"""

from .backends import MemoryBackend, StorageBackend
from .dictionary import NO_ID, TermDictionary
from .sharded import ShardedBackend, create_sharded_backend, shard_path
from .sqlite_backend import SQLiteBackend
from .stats import DatasetStats, PredicateStat, compute_stats
from .triplestore import CostMeter, QueryAborted, TripleStore

__all__ = [
    "TripleStore",
    "CostMeter",
    "QueryAborted",
    "DatasetStats",
    "PredicateStat",
    "compute_stats",
    "TermDictionary",
    "NO_ID",
    "StorageBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "create_sharded_backend",
    "shard_path",
]
