"""Storage backends: the ID-triple seam under :class:`TripleStore`.

A backend stores triples of integer IDs minted by a
:class:`~repro.store.dictionary.TermDictionary` it owns; it knows nothing
about RDF terms, SPARQL, or cost metering — those live one layer up in
:class:`~repro.store.triplestore.TripleStore`.  Keeping the seam at the
ID level means a backend only has to answer eight pattern shapes over
integer keys, which both implementations do with covering indexes:

* :class:`MemoryBackend` — three nested dict-of-dict-of-set indexes
  (SPO / POS / OSP) over ints; the default, fastest for ephemeral data.
* :class:`~repro.store.sqlite_backend.SQLiteBackend` — the same three
  covering indexes as B-trees in a WAL-mode SQLite file; survives
  restarts (see ``docs/storage.md`` for the schema).

``match_ids`` positions use ``None`` as the wildcard.  Backends never see
:data:`~repro.store.dictionary.NO_ID` in the "present" sense: it is a
valid probe value that simply never matches anything.

Columnar seam
-------------
``match_columns`` is the batched counterpart of ``match_ids``: instead of
one ``(s, p, o)`` tuple per ``next()`` call, it yields **batches of ID
columns** — tuples of ``array('q')`` arrays, one per requested wildcard
position, up to ``batch_size`` rows long.  The physical operators in
:mod:`~repro.sparql.plan` consume these directly, so a scan crosses the
backend boundary once per batch instead of once per row.  Both backends
implement it natively: the memory backend materializes index slices
straight into arrays, SQLite fetches only the needed columns with
``fetchmany`` over the same covering indexes.
"""

from __future__ import annotations

from array import array
from itertools import chain, repeat
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Set, Tuple

from .dictionary import TermDictionary

__all__ = ["StorageBackend", "MemoryBackend", "ColumnBatch"]

#: An encoded triple.
IdTriple = Tuple[int, int, int]

#: One batch of scan output: equal-length ``array('q')`` columns aligned
#: with the ``positions`` the caller requested.
ColumnBatch = Tuple[array, ...]

#: Default rows per ``match_columns`` batch.
COLUMN_BATCH_SIZE = 1024


class StorageBackend(Protocol):
    """What :class:`TripleStore` needs from a storage engine.

    All IDs are dictionary IDs; ``None`` in a ``match_ids``/``count``
    position means "any".  Estimation methods must be cheap (index
    fan-outs, no enumeration) and must never raise on unknown IDs.
    """

    #: Human-readable backend name (``"memory"`` / ``"sqlite"``).
    name: str
    #: The term dictionary whose IDs this backend stores.
    dictionary: TermDictionary

    def add(self, s: int, p: int, o: int) -> bool: ...
    def add_many(self, triples: Iterator[IdTriple]) -> int: ...
    def remove(self, s: int, p: int, o: int) -> bool: ...
    def contains(self, s: int, p: int, o: int) -> bool: ...
    def size(self) -> int: ...
    def iter_ids(self) -> Iterator[IdTriple]: ...
    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[IdTriple]: ...
    def match_columns(
        self,
        s: Optional[int],
        p: Optional[int],
        o: Optional[int],
        positions: Sequence[int],
        batch_size: int = COLUMN_BATCH_SIZE,
    ) -> Iterator[ColumnBatch]: ...
    def count_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int: ...
    def estimate_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int: ...
    def subject_ids(self) -> Iterator[int]: ...
    def subject_count(self) -> int: ...
    def predicate_ids(self) -> Iterator[int]: ...
    def object_ids(self) -> Iterator[int]: ...
    def predicate_fanouts(self) -> Dict[int, int]: ...
    def predicate_stats(self) -> Dict[int, Tuple[int, int, int]]: ...
    def object_fanouts(self) -> Dict[int, int]: ...
    def in_degree(self, o: int) -> int: ...
    def out_degree(self, s: int) -> int: ...
    def out_edges(self, s: int) -> Iterator[Tuple[int, int]]: ...
    def in_edges(self, o: int) -> Iterator[Tuple[int, int]]: ...
    def get_meta(self, key: str) -> Optional[str]: ...
    def set_meta(self, key: str, value: str) -> None: ...
    def meta_items(self) -> Dict[str, str]: ...
    def close(self) -> None: ...


class MemoryBackend:
    """SPO / POS / OSP nested-dict indexes over integer IDs.

    Structurally identical to the seed store's indexes, but every key is
    an ``int`` — hashing is a word op and small-int hashes are the values
    themselves, so probe order is deterministic across runs.
    """

    name = "memory"

    def __init__(self, dictionary: Optional[TermDictionary] = None) -> None:
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        self._size = 0
        self._meta: Dict[str, str] = {}
        # Per-predicate (count, distinct subjects, distinct objects),
        # rebuilt lazily after mutations; feeds the join planner.
        self._pstats: Optional[Dict[int, Tuple[int, int, int]]] = None
        # Columnar projection per predicate: aligned (subject, object)
        # ID arrays, built lazily from ``_pos`` on first columnar scan
        # and invalidated per predicate on mutation.  This is the
        # storage half of the batched executor: predicate-bound scans
        # (the dominant pattern shape) hand out array slices instead of
        # re-grouping the nested-dict index on every query.
        self._pcols: Dict[int, Tuple[array, array]] = {}
        # Generic columnar-scan cache keyed by the full match shape
        # ``(s, p, o, positions)``; covers the grouped shapes ``_pcols``
        # does not (subject-/object-bound scans, full wildcard).  Cleared
        # wholesale on mutation — same policy as the SQLite backend.
        self._col_cache: Dict[Tuple, Tuple[array, ...]] = {}

    # -- mutation ------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self._pstats = None
        self._pcols.pop(p, None)
        if self._col_cache:
            self._col_cache.clear()
        return True

    def add_many(self, triples: Iterator[IdTriple]) -> int:
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    def remove(self, s: int, p: int, o: int) -> bool:
        if not self.contains(s, p, o):
            return False
        # Prune emptied levels so the aggregate views (subject_ids,
        # predicate_fanouts, ...) stay identical to the SQLite backend's.
        _discard_and_prune(self._spo, s, p, o)
        _discard_and_prune(self._pos, p, o, s)
        _discard_and_prune(self._osp, o, s, p)
        self._size -= 1
        self._pstats = None
        self._pcols.pop(p, None)
        if self._col_cache:
            self._col_cache.clear()
        return True

    # -- lookup --------------------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        by_p = self._spo.get(s)
        if by_p is None:
            return False
        objects = by_p.get(p)
        return objects is not None and o in objects

    def size(self) -> int:
        return self._size

    def iter_ids(self) -> Iterator[IdTriple]:
        for s, by_p in self._spo.items():
            for p, objects in by_p.items():
                for o in objects:
                    yield (s, p, o)

    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[IdTriple]:
        if s is not None and p is not None and o is not None:
            if self.contains(s, p, o):
                yield (s, p, o)
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield (s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield (subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield (s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        yield from self.iter_ids()

    def match_columns(
        self,
        s: Optional[int],
        p: Optional[int],
        o: Optional[int],
        positions: Sequence[int],
        batch_size: int = COLUMN_BATCH_SIZE,
    ) -> Iterator[ColumnBatch]:
        """Columnar scan: batches of ID arrays for the wildcard ``positions``.

        ``positions`` selects which of the free (``None``) pattern
        positions to return, in any order; every requested position must
        be a wildcard.  Whole columns are materialized through
        ``itertools``-driven bulk copies (``chain.from_iterable`` over
        index groups, ``repeat`` for the grouped key) so the per-triple
        work runs in C, then handed out as ``array`` slices — this is
        where the batched executor's scan speedup comes from.
        """
        if not positions:
            raise ValueError("match_columns needs at least one position")
        if any((s, p, o)[pos] is not None for pos in positions):
            raise ValueError("match_columns positions must be wildcards")
        key = (s, p, o, tuple(positions))
        hit = self._col_cache.get(key)
        if hit is not None:
            length = len(hit[0])
            for start in range(0, length, batch_size):
                stop = start + batch_size
                yield tuple(col[start:stop] for col in hit)
            return
        want = set(positions)
        cols: Dict[int, array] = {}

        def grouped(index, key_pos: int, value_pos: int) -> None:
            """Build columns from one grouped index level: the key column
            repeats each group key ``len(group)`` times, the value column
            concatenates the groups.  Dict iteration order is stable
            across the passes, so the columns stay row-aligned."""
            if key_pos in want:
                sizes = map(len, index.values())
                cols[key_pos] = array(
                    "q", chain.from_iterable(map(repeat, index.keys(), sizes))
                )
            if value_pos in want:
                cols[value_pos] = array(
                    "q", chain.from_iterable(index.values())
                )

        if s is not None and p is not None:
            cols[2] = array("q", self._spo.get(s, {}).get(p, ()))
        elif p is not None and o is not None:
            cols[0] = array("q", self._pos.get(p, {}).get(o, ()))
        elif s is not None and o is not None:
            cols[1] = array("q", self._osp.get(o, {}).get(s, ()))
        elif s is not None:
            grouped(self._spo.get(s, {}), key_pos=1, value_pos=2)
        elif p is not None:
            cols[0], cols[2] = self._predicate_columns(p)
        elif o is not None:
            grouped(self._osp.get(o, {}), key_pos=0, value_pos=1)
        else:
            # Subject-major like ``match_ids`` so both pipelines cut
            # LIMIT/DISTINCT pages over the same enumeration order.
            subj_col = array("q") if 0 in want else None
            pred_col = array("q") if 1 in want else None
            obj_col = array("q") if 2 in want else None
            for subj, by_p in self._spo.items():
                sizes = [len(objects) for objects in by_p.values()]
                if subj_col is not None:
                    subj_col.extend(repeat(subj, sum(sizes)))
                if pred_col is not None:
                    pred_col.extend(
                        chain.from_iterable(map(repeat, by_p.keys(), sizes))
                    )
                if obj_col is not None:
                    obj_col.extend(chain.from_iterable(by_p.values()))
            for pos, col in ((0, subj_col), (1, pred_col), (2, obj_col)):
                if col is not None:
                    cols[pos] = col

        if len(self._col_cache) >= 128:
            self._col_cache.clear()
        out = self._col_cache[key] = tuple(cols[pos] for pos in positions)
        length = len(out[0])
        for start in range(0, length, batch_size):
            stop = start + batch_size
            yield tuple(col[start:stop] for col in out)

    def _predicate_columns(self, p: int) -> Tuple[array, array]:
        """Aligned (subject, object) columns for one predicate, cached.

        Callers must not mutate or hand out the returned arrays —
        ``match_columns`` only ever yields slices of them (array slicing
        copies), so the cache stays private.
        """
        cached = self._pcols.get(p)
        if cached is None:
            index = self._pos.get(p, {})
            sizes = map(len, index.values())
            o_col = array(
                "q", chain.from_iterable(map(repeat, index.keys(), sizes))
            )
            s_col = array("q", chain.from_iterable(index.values()))
            self._pcols[p] = cached = (s_col, o_col)
        return cached

    def count_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        """Exact match count (used by ``TripleStore.count``; still free —
        it walks index fan-outs, never the triples)."""
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        return self.estimate_ids(s, p, o)

    def estimate_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        if s is not None and p is not None and o is not None:
            return 1
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    # -- aggregates ----------------------------------------------------

    def subject_ids(self) -> Iterator[int]:
        return iter(self._spo.keys())

    def subject_count(self) -> int:
        return len(self._spo)

    def predicate_ids(self) -> Iterator[int]:
        return iter(self._pos.keys())

    def object_ids(self) -> Iterator[int]:
        return iter(self._osp.keys())

    def predicate_fanouts(self) -> Dict[int, int]:
        return {
            p: sum(len(subs) for subs in by_o.values())
            for p, by_o in self._pos.items()
        }

    def predicate_stats(self) -> Dict[int, Tuple[int, int, int]]:
        """Per-predicate ``(count, distinct subjects, distinct objects)``.

        One pass over the POS index per rebuild, cached until the next
        mutation — the planner asks for these on every query.
        """
        if self._pstats is None:
            stats: Dict[int, Tuple[int, int, int]] = {}
            for p, by_o in self._pos.items():
                count = 0
                subjects: Set[int] = set()
                for subs in by_o.values():
                    count += len(subs)
                    subjects.update(subs)
                stats[p] = (count, len(subjects), len(by_o))
            self._pstats = stats
        return self._pstats

    def object_fanouts(self) -> Dict[int, int]:
        return {
            o: sum(len(preds) for preds in by_s.values())
            for o, by_s in self._osp.items()
        }

    def in_degree(self, o: int) -> int:
        return sum(len(preds) for preds in self._osp.get(o, {}).values())

    def out_degree(self, s: int) -> int:
        return sum(len(objs) for objs in self._spo.get(s, {}).values())

    def out_edges(self, s: int) -> Iterator[Tuple[int, int]]:
        for pred, objects in self._spo.get(s, {}).items():
            for obj in objects:
                yield (pred, obj)

    def in_edges(self, o: int) -> Iterator[Tuple[int, int]]:
        for subj, preds in self._osp.get(o, {}).items():
            for pred in preds:
                yield (subj, pred)

    def get_meta(self, key: str) -> Optional[str]:
        """Read a metadata value (ephemeral, like the triples)."""
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def meta_items(self) -> Dict[str, str]:
        return dict(self._meta)

    def close(self) -> None:
        """Nothing to release for the in-memory backend."""


def _discard_and_prune(
    index: Dict[int, Dict[int, Set[int]]], a: int, b: int, c: int
) -> None:
    by_b = index[a]
    leaf = by_b[b]
    leaf.discard(c)
    if not leaf:
        del by_b[b]
        if not by_b:
            del index[a]
