"""Storage backends: the ID-triple seam under :class:`TripleStore`.

A backend stores triples of integer IDs minted by a
:class:`~repro.store.dictionary.TermDictionary` it owns; it knows nothing
about RDF terms, SPARQL, or cost metering — those live one layer up in
:class:`~repro.store.triplestore.TripleStore`.  Keeping the seam at the
ID level means a backend only has to answer eight pattern shapes over
integer keys, which both implementations do with covering indexes:

* :class:`MemoryBackend` — three nested dict-of-dict-of-set indexes
  (SPO / POS / OSP) over ints; the default, fastest for ephemeral data.
* :class:`~repro.store.sqlite_backend.SQLiteBackend` — the same three
  covering indexes as B-trees in a WAL-mode SQLite file; survives
  restarts (see ``docs/storage.md`` for the schema).

``match_ids`` positions use ``None`` as the wildcard.  Backends never see
:data:`~repro.store.dictionary.NO_ID` in the "present" sense: it is a
valid probe value that simply never matches anything.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Protocol, Set, Tuple

from .dictionary import TermDictionary

__all__ = ["StorageBackend", "MemoryBackend"]

#: An encoded triple.
IdTriple = Tuple[int, int, int]


class StorageBackend(Protocol):
    """What :class:`TripleStore` needs from a storage engine.

    All IDs are dictionary IDs; ``None`` in a ``match_ids``/``count``
    position means "any".  Estimation methods must be cheap (index
    fan-outs, no enumeration) and must never raise on unknown IDs.
    """

    #: Human-readable backend name (``"memory"`` / ``"sqlite"``).
    name: str
    #: The term dictionary whose IDs this backend stores.
    dictionary: TermDictionary

    def add(self, s: int, p: int, o: int) -> bool: ...
    def add_many(self, triples: Iterator[IdTriple]) -> int: ...
    def remove(self, s: int, p: int, o: int) -> bool: ...
    def contains(self, s: int, p: int, o: int) -> bool: ...
    def size(self) -> int: ...
    def iter_ids(self) -> Iterator[IdTriple]: ...
    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[IdTriple]: ...
    def count_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int: ...
    def estimate_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int: ...
    def subject_ids(self) -> Iterator[int]: ...
    def subject_count(self) -> int: ...
    def predicate_ids(self) -> Iterator[int]: ...
    def object_ids(self) -> Iterator[int]: ...
    def predicate_fanouts(self) -> Dict[int, int]: ...
    def predicate_stats(self) -> Dict[int, Tuple[int, int, int]]: ...
    def object_fanouts(self) -> Dict[int, int]: ...
    def in_degree(self, o: int) -> int: ...
    def out_degree(self, s: int) -> int: ...
    def out_edges(self, s: int) -> Iterator[Tuple[int, int]]: ...
    def in_edges(self, o: int) -> Iterator[Tuple[int, int]]: ...
    def get_meta(self, key: str) -> Optional[str]: ...
    def set_meta(self, key: str, value: str) -> None: ...
    def meta_items(self) -> Dict[str, str]: ...
    def close(self) -> None: ...


class MemoryBackend:
    """SPO / POS / OSP nested-dict indexes over integer IDs.

    Structurally identical to the seed store's indexes, but every key is
    an ``int`` — hashing is a word op and small-int hashes are the values
    themselves, so probe order is deterministic across runs.
    """

    name = "memory"

    def __init__(self, dictionary: Optional[TermDictionary] = None) -> None:
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        self._size = 0
        self._meta: Dict[str, str] = {}
        # Per-predicate (count, distinct subjects, distinct objects),
        # rebuilt lazily after mutations; feeds the join planner.
        self._pstats: Optional[Dict[int, Tuple[int, int, int]]] = None

    # -- mutation ------------------------------------------------------

    def add(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        self._pstats = None
        return True

    def add_many(self, triples: Iterator[IdTriple]) -> int:
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    def remove(self, s: int, p: int, o: int) -> bool:
        if not self.contains(s, p, o):
            return False
        # Prune emptied levels so the aggregate views (subject_ids,
        # predicate_fanouts, ...) stay identical to the SQLite backend's.
        _discard_and_prune(self._spo, s, p, o)
        _discard_and_prune(self._pos, p, o, s)
        _discard_and_prune(self._osp, o, s, p)
        self._size -= 1
        self._pstats = None
        return True

    # -- lookup --------------------------------------------------------

    def contains(self, s: int, p: int, o: int) -> bool:
        by_p = self._spo.get(s)
        if by_p is None:
            return False
        objects = by_p.get(p)
        return objects is not None and o in objects

    def size(self) -> int:
        return self._size

    def iter_ids(self) -> Iterator[IdTriple]:
        for s, by_p in self._spo.items():
            for p, objects in by_p.items():
                for o in objects:
                    yield (s, p, o)

    def match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[IdTriple]:
        if s is not None and p is not None and o is not None:
            if self.contains(s, p, o):
                yield (s, p, o)
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield (s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield (subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield (s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        yield from self.iter_ids()

    def count_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        """Exact match count (used by ``TripleStore.count``; still free —
        it walks index fan-outs, never the triples)."""
        if s is not None and p is not None and o is not None:
            return 1 if self.contains(s, p, o) else 0
        return self.estimate_ids(s, p, o)

    def estimate_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> int:
        if s is not None and p is not None and o is not None:
            return 1
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    # -- aggregates ----------------------------------------------------

    def subject_ids(self) -> Iterator[int]:
        return iter(self._spo.keys())

    def subject_count(self) -> int:
        return len(self._spo)

    def predicate_ids(self) -> Iterator[int]:
        return iter(self._pos.keys())

    def object_ids(self) -> Iterator[int]:
        return iter(self._osp.keys())

    def predicate_fanouts(self) -> Dict[int, int]:
        return {
            p: sum(len(subs) for subs in by_o.values())
            for p, by_o in self._pos.items()
        }

    def predicate_stats(self) -> Dict[int, Tuple[int, int, int]]:
        """Per-predicate ``(count, distinct subjects, distinct objects)``.

        One pass over the POS index per rebuild, cached until the next
        mutation — the planner asks for these on every query.
        """
        if self._pstats is None:
            stats: Dict[int, Tuple[int, int, int]] = {}
            for p, by_o in self._pos.items():
                count = 0
                subjects: Set[int] = set()
                for subs in by_o.values():
                    count += len(subs)
                    subjects.update(subs)
                stats[p] = (count, len(subjects), len(by_o))
            self._pstats = stats
        return self._pstats

    def object_fanouts(self) -> Dict[int, int]:
        return {
            o: sum(len(preds) for preds in by_s.values())
            for o, by_s in self._osp.items()
        }

    def in_degree(self, o: int) -> int:
        return sum(len(preds) for preds in self._osp.get(o, {}).values())

    def out_degree(self, s: int) -> int:
        return sum(len(objs) for objs in self._spo.get(s, {}).values())

    def out_edges(self, s: int) -> Iterator[Tuple[int, int]]:
        for pred, objects in self._spo.get(s, {}).items():
            for obj in objects:
                yield (pred, obj)

    def in_edges(self, o: int) -> Iterator[Tuple[int, int]]:
        for subj, preds in self._osp.get(o, {}).items():
            for pred in preds:
                yield (subj, pred)

    def get_meta(self, key: str) -> Optional[str]:
        """Read a metadata value (ephemeral, like the triples)."""
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def meta_items(self) -> Dict[str, str]:
        return dict(self._meta)

    def close(self) -> None:
        """Nothing to release for the in-memory backend."""


def _discard_and_prune(
    index: Dict[int, Dict[int, Set[int]]], a: int, b: int, c: int
) -> None:
    by_b = index[a]
    leaf = by_b[b]
    leaf.discard(c)
    if not leaf:
        del by_b[b]
        if not by_b:
            del index[a]
