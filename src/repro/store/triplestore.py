"""In-memory indexed triple store.

The store keeps three hash indexes (SPO, POS, OSP) so that any triple
pattern can be answered by touching only candidate triples.  It is the
storage substrate under the SPARQL engine and — wrapped in the endpoint
simulator — stands in for the remote RDF datasets of the paper.

Cost accounting hook
--------------------
Every matching operation reports the number of index probes and produced
rows to an optional :class:`CostMeter`.  The endpoint simulator uses this
to implement deterministic query timeouts (a remote endpoint kills
long-running queries; we abort evaluation when the meter trips), which is
the environmental pressure Sapphire's initialization strategy is designed
around.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.terms import IRI, Literal, Term, Variable, is_concrete
from ..rdf.triples import Triple, TriplePattern

__all__ = ["TripleStore", "CostMeter", "QueryAborted"]


class QueryAborted(RuntimeError):
    """Raised when a cost meter's budget is exhausted mid-evaluation."""


class CostMeter:
    """Accumulates abstract evaluation cost and enforces a budget.

    Cost units: one unit per candidate triple scanned plus one unit per
    produced row.  ``budget=None`` means unlimited (warehouse mode).
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        self.budget = budget
        self.cost = 0

    def charge(self, units: int = 1) -> None:
        self.cost += units
        if self.budget is not None and self.cost > self.budget:
            raise QueryAborted(f"cost budget {self.budget} exhausted")

    def reset(self) -> None:
        self.cost = 0


class TripleStore:
    """A set of triples with SPO / POS / OSP hash indexes.

    The three indexes are nested dictionaries; e.g. ``_spo[s][p]`` is the
    set of objects for subject ``s`` and predicate ``p``.  Together they
    cover all eight triple-pattern shapes with at most one level of
    iteration over a candidate set.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0
        if triples is not None:
            self.add_all(triples)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        by_p = self._spo.get(triple.subject)
        if by_p is None:
            return False
        objects = by_p.get(triple.predicate)
        return objects is not None and triple.object in objects

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; returns False if it was already present."""
        objects = self._spo[triple.subject][triple.predicate]
        if triple.object in objects:
            return False
        objects.add(triple.object)
        self._pos[triple.predicate][triple.object].add(triple.subject)
        self._osp[triple.object][triple.subject].add(triple.predicate)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added."""
        return sum(1 for triple in triples if self.add(triple))

    def remove(self, triple: Triple) -> bool:
        """Delete ``triple``; returns False if it was not present."""
        if triple not in self:
            return False
        self._spo[triple.subject][triple.predicate].discard(triple.object)
        self._pos[triple.predicate][triple.object].discard(triple.subject)
        self._osp[triple.object][triple.subject].discard(triple.predicate)
        self._size -= 1
        return True

    def triples(self) -> Iterator[Triple]:
        """Iterate over every triple in the store."""
        for s, by_p in self._spo.items():
            for p, objects in by_p.items():
                for o in objects:
                    yield Triple(s, p, o)

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------

    def match(
        self,
        pattern: TriplePattern,
        meter: Optional[CostMeter] = None,
    ) -> Iterator[Triple]:
        """Yield the triples matching ``pattern``.

        Dispatches on which positions are concrete so each shape touches
        the cheapest index.  Charges ``meter`` one unit per yielded triple
        (scan cost folds into the candidate enumeration below).
        """
        s = pattern.subject if is_concrete(pattern.subject) else None
        p = pattern.predicate if is_concrete(pattern.predicate) else None
        o = pattern.object if is_concrete(pattern.object) else None

        # Repeated-variable patterns (?x :p ?x) are filtered post-hoc.
        needs_filter = len(set(pattern.variables())) != len(pattern.variables())

        for triple in self._match_concrete(s, p, o, meter):
            if needs_filter and pattern.match(triple) is None:
                continue
            yield triple

    def _match_concrete(
        self,
        s: Optional[Term],
        p: Optional[Term],
        o: Optional[Term],
        meter: Optional[CostMeter],
    ) -> Iterator[Triple]:
        def charge() -> None:
            if meter is not None:
                meter.charge()

        if s is not None and p is not None and o is not None:
            charge()
            if Triple(s, p, o) in self:
                yield Triple(s, p, o)
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):  # type: ignore[call-overload]
                charge()
                yield Triple(s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):  # type: ignore[call-overload]
                charge()
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):  # type: ignore[call-overload]
                charge()
                yield Triple(s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    charge()
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    charge()
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    charge()
                    yield Triple(subj, pred, o)
            return
        for triple in self.triples():
            charge()
            yield triple

    def count(self, pattern: TriplePattern) -> int:
        """Number of triples matching ``pattern`` (no cost charged)."""
        return sum(1 for _ in self.match(pattern))

    def cardinality_estimate(self, pattern: TriplePattern) -> int:
        """Cheap upper-bound estimate used for join ordering.

        Uses index fan-outs without enumerating matches; variables repeated
        inside the pattern are ignored (estimate stays an upper bound).
        """
        s = pattern.subject if is_concrete(pattern.subject) else None
        p = pattern.predicate if is_concrete(pattern.predicate) else None
        o = pattern.object if is_concrete(pattern.object) else None
        if s is not None and p is not None and o is not None:
            return 1
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return self._size

    # ------------------------------------------------------------------
    # Dataset-level accessors used by initialization and baselines
    # ------------------------------------------------------------------

    def predicates(self) -> Set[IRI]:
        """All distinct predicates in the store."""
        return {p for p in self._pos.keys() if isinstance(p, IRI)}

    def predicate_frequencies(self) -> Dict[IRI, int]:
        """Map each predicate to its triple count."""
        return {
            p: sum(len(subs) for subs in by_o.values())
            for p, by_o in self._pos.items()
            if isinstance(p, IRI)
        }

    def subjects(self) -> Set[Term]:
        return set(self._spo.keys())

    def objects(self) -> Set[Term]:
        return set(self._osp.keys())

    def literals(self) -> Iterator[Literal]:
        """All distinct literal objects."""
        for o in self._osp.keys():
            if isinstance(o, Literal):
                yield o

    def in_degree(self, term: Term) -> int:
        """Number of triples with ``term`` in object position."""
        return sum(len(preds) for preds in self._osp.get(term, {}).values())

    def out_degree(self, term: Term) -> int:
        """Number of triples with ``term`` in subject position."""
        return sum(len(objs) for objs in self._spo.get(term, {}).values())

    def neighbours(self, term: Term) -> List[Tuple[Term, IRI, Term, bool]]:
        """Edges incident to ``term``.

        Returns ``(subject, predicate, object, outgoing)`` tuples; used by
        the Steiner-tree expansion when running in warehouse mode and by
        tests that cross-check the expansion queries.
        """
        edges: List[Tuple[Term, IRI, Term, bool]] = []
        for pred, objects in self._spo.get(term, {}).items():
            for obj in objects:
                edges.append((term, pred, obj, True))  # type: ignore[arg-type]
        for subj, preds in self._osp.get(term, {}).items():
            for pred in preds:
                edges.append((subj, pred, term, False))  # type: ignore[arg-type]
        return edges
