"""Dictionary-encoded indexed triple store.

The store interns every RDF term into a :class:`TermDictionary` (dense
integer IDs) and delegates the actual (s, p, o) ID triples to a pluggable
:class:`~repro.store.backends.StorageBackend` — in-memory SPO/POS/OSP
hash indexes by default, or a WAL-mode SQLite file for persistence.  All
pattern matching, joining and counting happens on integers; terms are
decoded only when results are materialized (``docs/storage.md`` has the
full design).

The public API is unchanged from the term-keyed store it replaced: it
still speaks :class:`Triple`/:class:`TriplePattern` at the edges.  The
ID-level entry points (:meth:`TripleStore.match_ids`,
:meth:`TripleStore.encode_pattern`, :meth:`TripleStore.decode_id`) are
what the SPARQL evaluator joins through.

Cost accounting hook
--------------------
Every matching operation reports the number of index probes and produced
rows to an optional :class:`CostMeter`.  The endpoint simulator uses this
to implement deterministic query timeouts (a remote endpoint kills
long-running queries; we abort evaluation when the meter trips), which is
the environmental pressure Sapphire's initialization strategy is designed
around.

**Estimation is free by contract**: :meth:`TripleStore.count` and
:meth:`TripleStore.cardinality_estimate` never charge a meter, even when
one is passed.  Join planning and endpoint admission control run dozens
of estimates per query; if those probes were billed, planning itself
could trip the timeout it is trying to avoid.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..rdf.terms import IRI, Literal, Term, Variable
from ..rdf.triples import Triple, TriplePattern
from .backends import COLUMN_BATCH_SIZE, ColumnBatch, MemoryBackend, StorageBackend
from .dictionary import NO_ID, TermDictionary

__all__ = ["TripleStore", "CostMeter", "QueryAborted"]

#: One position of an encoded pattern: a dictionary ID (possibly
#: :data:`NO_ID` for a concrete-but-unknown term) or a variable name.
IdOrVar = Union[int, str]


class QueryAborted(RuntimeError):
    """Raised when a cost meter's budget is exhausted mid-evaluation."""


class CostMeter:
    """Accumulates abstract evaluation cost and enforces a budget.

    Cost units: one unit per candidate triple scanned plus one unit per
    produced row.  ``budget=None`` means unlimited (warehouse mode).
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        self.budget = budget
        self.cost = 0

    def charge(self, units: int = 1) -> None:
        self.cost += units
        if self.budget is not None and self.cost > self.budget:
            raise QueryAborted(f"cost budget {self.budget} exhausted")

    def reset(self) -> None:
        self.cost = 0


class TripleStore:
    """A set of triples, dictionary-encoded over a storage backend.

    ``backend=None`` gives the in-memory engine.  Pass a
    :class:`~repro.store.sqlite_backend.SQLiteBackend` (or anything
    satisfying :class:`~repro.store.backends.StorageBackend`) for
    persistent storage; the backend owns the term dictionary so IDs and
    rows stay consistent across restarts.
    """

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self._backend: StorageBackend = backend if backend is not None else MemoryBackend()
        self._dict = self._backend.dictionary
        # Monotonic mutation counter; plan/column caches key on it so a
        # write through this facade invalidates anything derived from
        # the previous contents.
        self._generation = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Encoding seam
    # ------------------------------------------------------------------

    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def generation(self) -> int:
        """Bumps on every mutating call; consumers (the evaluator's plan
        cache) compare it to detect that cached derivations are stale."""
        return self._generation

    @property
    def dictionary(self) -> TermDictionary:
        return self._dict

    def term_id(self, term: Term) -> int:
        """Dictionary ID of ``term`` (:data:`NO_ID` when never stored)."""
        return self._dict.lookup(term)

    def decode_id(self, term_id: int) -> Term:
        """Term for a dictionary ID (list index; the materialization step)."""
        return self._dict.decode(term_id)

    def encode_pattern(self, pattern: TriplePattern) -> Tuple[IdOrVar, IdOrVar, IdOrVar]:
        """Pattern positions as IDs (concrete) or variable names (free).

        Concrete terms the store has never seen encode to :data:`NO_ID`,
        which matches nothing — exactly the semantics of probing a hash
        index with an absent key.
        """
        return tuple(
            term.name if isinstance(term, Variable) else self._dict.lookup(term)
            for term in pattern.as_tuple()
        )  # type: ignore[return-value]

    def close(self) -> None:
        """Release backend resources (a no-op for the memory engine)."""
        self._backend.close()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._backend.size()

    def __contains__(self, triple: Triple) -> bool:
        lookup = self._dict.lookup
        s, p, o = lookup(triple.subject), lookup(triple.predicate), lookup(triple.object)
        if NO_ID in (s, p, o):
            return False
        return self._backend.contains(s, p, o)

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; returns False if it was already present."""
        encode = self._dict.encode
        self._generation += 1
        return self._backend.add(
            encode(triple.subject), encode(triple.predicate), encode(triple.object)
        )

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns the number actually added.

        Bulk path: terms are interned first, then the backend ingests the
        ID rows in one batch (a single transaction on SQLite).
        """
        encode = self._dict.encode
        self._generation += 1
        return self._backend.add_many(
            (encode(t.subject), encode(t.predicate), encode(t.object)) for t in triples
        )

    def remove(self, triple: Triple) -> bool:
        """Delete ``triple``; returns False if it was not present.

        The terms stay interned — dictionary IDs are never recycled.
        """
        lookup = self._dict.lookup
        s, p, o = lookup(triple.subject), lookup(triple.predicate), lookup(triple.object)
        if NO_ID in (s, p, o):
            return False
        self._generation += 1
        return self._backend.remove(s, p, o)

    def triples(self) -> Iterator[Triple]:
        """Iterate over every triple in the store (decoded)."""
        decode = self._dict.decode
        for s, p, o in self._backend.iter_ids():
            yield Triple(decode(s), decode(p), decode(o))

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------

    def match(
        self,
        pattern: TriplePattern,
        meter: Optional[CostMeter] = None,
    ) -> Iterator[Triple]:
        """Yield the triples matching ``pattern``.

        Matching runs entirely on IDs; each yielded triple is decoded at
        the last moment.  Charges ``meter`` one unit per candidate
        enumerated from the backend index.
        """
        encoded = self.encode_pattern(pattern)
        names = pattern.variables()
        repeated = _repeated_positions(encoded) if len(set(names)) != len(names) else None
        s, p, o = (entry if isinstance(entry, int) else None for entry in encoded)
        terms = self._dict.terms
        if (
            meter is None and repeated is None
            and (s is None or p is None or o is None)
            and NO_ID not in (s, p, o)
        ):
            # Fast path: un-metered, nothing to check per row — stream
            # straight off the backend index.
            for rs, rp, ro in self._backend.match_ids(s, p, o):
                yield Triple(terms[rs], terms[rp], terms[ro])
            return
        # All cost semantics (concrete-probe charge-on-miss, NO_ID
        # short-circuit, per-candidate charging) live in match_ids —
        # the single source of truth.
        for row in self.match_ids(s, p, o, meter):
            if repeated is not None and not _repeats_consistent(row, repeated):
                continue
            yield Triple(terms[row[0]], terms[row[1]], terms[row[2]])

    def match_ids(
        self,
        s: Optional[int],
        p: Optional[int],
        o: Optional[int],
        meter: Optional[CostMeter] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """ID-level pattern matching; ``None`` positions are wildcards.

        Cost semantics mirror the index layout: the fully concrete shape
        is one probe (charged even on a miss), every other shape charges
        one unit per candidate enumerated.  :data:`NO_ID` in a partially
        concrete position short-circuits to the empty result for free,
        like probing a hash index with an absent key.
        """
        if s is not None and p is not None and o is not None:
            if meter is not None:
                meter.charge()
            if NO_ID not in (s, p, o) and self._backend.contains(s, p, o):
                yield (s, p, o)
            return
        if NO_ID in (s, p, o):
            return
        if meter is None:
            yield from self._backend.match_ids(s, p, o)
            return
        for row in self._backend.match_ids(s, p, o):
            meter.charge()
            yield row

    def match_columns(
        self,
        s: Optional[int],
        p: Optional[int],
        o: Optional[int],
        positions: Sequence[int],
        meter: Optional[CostMeter] = None,
        batch_size: int = COLUMN_BATCH_SIZE,
    ) -> Iterator[ColumnBatch]:
        """Columnar ID-level matching for the batched executor.

        Yields batches of ``array('q')`` columns, one per requested
        wildcard position.  Cost semantics match :meth:`match_ids` in the
        aggregate — one unit per candidate — but charged per batch, which
        is where the metered scan speedup comes from.  Callers must pass
        at least one wildcard position, so the fully concrete shape never
        reaches here (ScanNode probes it via :meth:`match_ids`).
        """
        if NO_ID in (s, p, o):
            return
        if meter is None:
            yield from self._backend.match_columns(s, p, o, positions, batch_size)
            return
        for batch in self._backend.match_columns(s, p, o, positions, batch_size):
            meter.charge(len(batch[0]))
            yield batch

    def count(
        self, pattern: TriplePattern, meter: Optional[CostMeter] = None
    ) -> int:
        """Number of triples matching ``pattern``.

        **Never charges a meter** — counting walks index fan-outs (or a
        covering-index range count on SQLite), not the triples.  The
        ``meter`` parameter is accepted for call-site symmetry with
        :meth:`match` and deliberately ignored: estimation must stay free
        so that join planning cannot trip endpoint timeouts.
        """
        del meter  # free by contract
        encoded = self.encode_pattern(pattern)
        s, p, o = (entry if isinstance(entry, int) else None for entry in encoded)
        if NO_ID in (s, p, o):
            return 0
        names = pattern.variables()
        if len(set(names)) != len(names):
            # Repeated variables need the post-filter; count in ID space
            # without decoding a single term.
            repeated = _repeated_positions(encoded)
            return sum(
                1 for row in self.match_ids(s, p, o)
                if _repeats_consistent(row, repeated)
            )
        return self._backend.count_ids(s, p, o)

    def cardinality_estimate(
        self, pattern: TriplePattern, meter: Optional[CostMeter] = None
    ) -> int:
        """Cheap upper-bound estimate used for join ordering.

        Uses index fan-outs without enumerating matches; variables
        repeated inside the pattern are ignored (the estimate stays an
        upper bound).  Like :meth:`count`, this **never charges a meter**.
        """
        del meter  # free by contract
        s, p, o = self.encode_pattern(pattern)
        if isinstance(s, int) and isinstance(p, int) and isinstance(o, int):
            return 1
        if NO_ID in (s, p, o):
            return 0
        return self._backend.estimate_ids(
            s if isinstance(s, int) else None,
            p if isinstance(p, int) else None,
            o if isinstance(o, int) else None,
        )

    # ------------------------------------------------------------------
    # Dataset-level accessors used by initialization and baselines
    # ------------------------------------------------------------------

    def predicates(self) -> Set[IRI]:
        """All distinct predicates in the store."""
        decode = self._dict.decode
        return {
            term for term in (decode(p) for p in self._backend.predicate_ids())
            if isinstance(term, IRI)
        }

    def predicate_frequencies(self) -> Dict[IRI, int]:
        """Map each predicate to its triple count."""
        decode = self._dict.decode
        return {
            term: n
            for term, n in (
                (decode(p), n) for p, n in self._backend.predicate_fanouts().items()
            )
            if isinstance(term, IRI)
        }

    def predicate_stats_ids(self) -> Dict[int, Tuple[int, int, int]]:
        """Per-predicate ``(count, distinct s, distinct o)`` keyed by ID.

        The join planner's statistics source: cached by the backend and
        rebuilt lazily after mutations, so reading it is free in the
        steady state (estimation stays meter-free by contract).
        """
        return self._backend.predicate_stats()

    def predicate_stats(self) -> Dict[IRI, "PredicateStat"]:
        """Decoded view of :meth:`predicate_stats_ids` for reporting."""
        from .stats import PredicateStat

        decode = self._dict.decode
        return {
            term: PredicateStat(*stat)
            for term, stat in (
                (decode(p), stat) for p, stat in self._backend.predicate_stats().items()
            )
            if isinstance(term, IRI)
        }

    def subjects(self) -> Set[Term]:
        decode = self._dict.decode
        return {decode(s) for s in self._backend.subject_ids()}

    def n_subjects(self) -> int:
        """Distinct-subject count without decoding or materializing."""
        return self._backend.subject_count()

    def objects(self) -> Set[Term]:
        decode = self._dict.decode
        return {decode(o) for o in self._backend.object_ids()}

    def literals(self) -> Iterator[Literal]:
        """All distinct literal objects."""
        decode = self._dict.decode
        for o in self._backend.object_ids():
            term = decode(o)
            if isinstance(term, Literal):
                yield term

    def in_degree(self, term: Term) -> int:
        """Number of triples with ``term`` in object position."""
        term_id = self._dict.lookup(term)
        return 0 if term_id == NO_ID else self._backend.in_degree(term_id)

    def out_degree(self, term: Term) -> int:
        """Number of triples with ``term`` in subject position."""
        term_id = self._dict.lookup(term)
        return 0 if term_id == NO_ID else self._backend.out_degree(term_id)

    def entity_in_degrees(self) -> Dict[IRI, int]:
        """In-degree of every IRI entity (subjects and objects), one pass.

        Computed entirely in ID space from the object fan-outs; entities
        that only ever appear as subjects get degree 0.  Feeds the
        Definition 1 significance statistics without per-entity probes.
        """
        decode = self._dict.decode
        degrees: Dict[IRI, int] = {}
        for o, n in self._backend.object_fanouts().items():
            term = decode(o)
            if isinstance(term, IRI):
                degrees[term] = n
        for s in self._backend.subject_ids():
            term = decode(s)
            if isinstance(term, IRI):
                degrees.setdefault(term, 0)
        return degrees

    def neighbours(self, term: Term) -> List[Tuple[Term, IRI, Term, bool]]:
        """Edges incident to ``term``.

        Returns ``(subject, predicate, object, outgoing)`` tuples; used by
        the Steiner-tree expansion when running in warehouse mode and by
        tests that cross-check the expansion queries.
        """
        term_id = self._dict.lookup(term)
        if term_id == NO_ID:
            return []
        decode = self._dict.decode
        edges: List[Tuple[Term, IRI, Term, bool]] = []
        for pred, obj in self._backend.out_edges(term_id):
            edges.append((term, decode(pred), decode(obj), True))  # type: ignore[arg-type]
        for subj, pred in self._backend.in_edges(term_id):
            edges.append((decode(subj), decode(pred), term, False))  # type: ignore[arg-type]
        return edges


def _repeated_positions(encoded: Sequence[IdOrVar]) -> List[Tuple[int, int]]:
    """Position pairs that must carry equal IDs (repeated variables)."""
    first_seen: Dict[str, int] = {}
    pairs: List[Tuple[int, int]] = []
    for position, entry in enumerate(encoded):
        if isinstance(entry, str):
            if entry in first_seen:
                pairs.append((first_seen[entry], position))
            else:
                first_seen[entry] = position
    return pairs


def _repeats_consistent(
    row: Tuple[int, int, int], pairs: Sequence[Tuple[int, int]]
) -> bool:
    return all(row[a] == row[b] for a, b in pairs)
