"""Dataset statistics helpers.

These summarize a :class:`~repro.store.triplestore.TripleStore` in the
terms the paper cares about: distinct predicates vs distinct literals
(the ratio motivating Section 5.1's "cache all predicates" heuristic),
literal length/language distributions (the <80-chars and English-only
filters), and entity in-degree skew (Definition 1 significance).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from ..rdf.terms import IRI
from .triplestore import TripleStore

__all__ = ["DatasetStats", "PredicateStat", "compute_stats"]


@dataclass(frozen=True)
class PredicateStat:
    """Planner-grade statistics for one predicate.

    ``count`` is the number of triples carrying the predicate;
    ``distinct_subjects``/``distinct_objects`` are the sizes of its
    subject/object columns.  The ratios below are the classic join
    selectivity inputs: joining two patterns on a shared subject
    variable produces roughly ``count_a * count_b / max(distinct
    subjects)`` rows.
    """

    count: int
    distinct_subjects: int
    distinct_objects: int

    @property
    def subject_fanout(self) -> float:
        """Mean triples per distinct subject (≥ 1 when the predicate exists)."""
        return self.count / self.distinct_subjects if self.distinct_subjects else 0.0

    @property
    def object_fanout(self) -> float:
        """Mean triples per distinct object."""
        return self.count / self.distinct_objects if self.distinct_objects else 0.0


@dataclass
class DatasetStats:
    """Summary statistics of one RDF dataset."""

    n_triples: int
    n_subjects: int
    n_predicates: int
    n_literals: int
    n_entities: int
    literal_length_histogram: Dict[int, int] = field(default_factory=dict)
    literal_language_counts: Dict[str, int] = field(default_factory=dict)
    predicate_frequencies: Dict[IRI, int] = field(default_factory=dict)
    predicate_stats: Dict[IRI, PredicateStat] = field(default_factory=dict)
    max_in_degree: int = 0
    mean_in_degree: float = 0.0

    @property
    def predicate_to_literal_ratio(self) -> float:
        """#predicates / #literals — the paper observes this is ≪ 1."""
        if self.n_literals == 0:
            return float("inf") if self.n_predicates else 0.0
        return self.n_predicates / self.n_literals

    def literals_shorter_than(self, limit: int) -> int:
        """How many distinct literals have length < ``limit``."""
        return sum(count for length, count in self.literal_length_histogram.items() if length < limit)


def compute_stats(store: TripleStore) -> DatasetStats:
    """Compute :class:`DatasetStats` for ``store`` in a single pass.

    The degree statistics come from :meth:`TripleStore.entity_in_degrees`,
    which aggregates in ID space (one fan-out scan on the backend) and
    decodes each entity exactly once at materialization time — no
    per-entity index probes.
    """
    length_hist: Counter = Counter()
    lang_counts: Counter = Counter()
    n_literals = 0
    for literal in store.literals():
        n_literals += 1
        length_hist[len(literal.lexical)] += 1
        lang_counts[literal.lang or ""] += 1

    degrees = store.entity_in_degrees()
    in_degrees = list(degrees.values())
    max_in = max(in_degrees, default=0)
    mean_in = sum(in_degrees) / len(in_degrees) if in_degrees else 0.0

    return DatasetStats(
        n_triples=len(store),
        n_subjects=store.n_subjects(),
        n_predicates=len(store.predicates()),
        n_literals=n_literals,
        n_entities=len(degrees),
        literal_length_histogram=dict(length_hist),
        literal_language_counts=dict(lang_counts),
        predicate_frequencies=store.predicate_frequencies(),
        predicate_stats=store.predicate_stats(),
        max_in_degree=max_in,
        mean_in_degree=mean_in,
    )
