"""Term dictionary: dense integer IDs for RDF terms.

Dictionary encoding is the standard first step in scalable RDF stores
(RDF-3X, Virtuoso, HDT all do it): every distinct term is *interned* to a
small integer once, and all index structures, joins and comparisons then
operate on integers.  Hashing an ``int`` is a single machine word; hashing
a :class:`~repro.rdf.terms.Literal` walks its lexical form, language tag
and datatype IRI on every probe.  The interactive loop (QCM completions,
QSM relaxation, initialization crawls) issues millions of such probes, so
the encoding pays for itself immediately.

IDs are dense (``0 .. len-1``) and stable for the lifetime of the
dictionary: terms are never evicted, even when the last triple mentioning
them is removed.  Density lets :meth:`TermDictionary.decode` be a plain
list index and lets persistent backends store the dictionary as a table
keyed by the same IDs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..rdf.terms import Term

__all__ = ["NO_ID", "TermDictionary"]

#: Sentinel returned by :meth:`TermDictionary.lookup` for unknown terms.
#: It is a valid "concrete but unmatchable" ID: no stored triple ever
#: contains it, so probes built from unknown terms fall through naturally.
NO_ID = -1


class TermDictionary:
    """Bidirectional mapping between RDF terms and dense integer IDs."""

    __slots__ = ("_ids", "terms", "_on_intern")

    def __init__(
        self, on_intern: Optional[Callable[[int, Term], None]] = None
    ) -> None:
        self._ids: Dict[Term, int] = {}
        #: The decode table: ``terms[id]`` is the term for ``id``.  Public
        #: so hot loops can index it directly instead of calling
        #: :meth:`decode` per row; treat it as read-only.
        self.terms: List[Term] = []
        #: Persistence hook: called exactly once per newly interned term
        #: (the SQLite backend uses it to mirror the dictionary to disk).
        self._on_intern = on_intern

    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def encode(self, term: Term) -> int:
        """Intern ``term``, minting a fresh ID on first sight."""
        term_id = self._ids.get(term)
        if term_id is not None:
            return term_id
        term_id = len(self.terms)
        self._ids[term] = term_id
        self.terms.append(term)
        if self._on_intern is not None:
            self._on_intern(term_id, term)
        return term_id

    def lookup(self, term: Term) -> int:
        """ID of ``term`` without interning; :data:`NO_ID` when absent."""
        return self._ids.get(term, NO_ID)

    def decode(self, term_id: int) -> Term:
        """The term for a previously minted ID (plain list index)."""
        return self.terms[term_id]

    def restore(self, term_id: int, term: Term) -> None:
        """Re-insert a term under a known ID (backend load path).

        IDs must arrive in increasing dense order; used when a persistent
        backend replays its terms table into a fresh dictionary.
        """
        if term_id != len(self.terms):
            raise ValueError(
                f"non-dense restore: expected id {len(self.terms)}, got {term_id}"
            )
        self._ids[term] = term_id
        self.terms.append(term)

    def items(self) -> Iterator[Tuple[int, Term]]:
        """All ``(id, term)`` pairs in ID order."""
        return enumerate(self.terms)
