"""On-disk term-index tables for the suggestion cache (manifest v3).

A v3 cache file is a v2 reified cache (``core/persistence.py``) plus a
set of *index tables* living in the same SQLite database, so one file
ships both the durable cache contents and a search structure a replica
can serve from without rebuilding anything:

* ``cache_surfaces`` — the dense surface-ID table: one row per interned
  (lower-cased) surface with its length, significance score, a kind
  bitmask and, for predicate/class surfaces, their first-seen order.
  Tree membership is **not** stored: the suffix-tree capacity is a
  load-time choice (``tests/test_persistence.py``), so the loader ranks
  literals by ``(significance DESC, length, surface)`` — byte-for-byte
  the order ``SapphireCache.build_indexes`` sorts by — and takes the
  top ``capacity`` rows itself.
* ``cache_entries`` — the per-surface entry buckets (kind, term,
  source predicate, display form), keyed into the file's own ``terms``
  table so entries decode through the same dictionary rows the reified
  triples use.
* ``cache_fts`` — an FTS5 table with the ``trigram`` tokenizer over the
  literal surfaces, when the linked SQLite has FTS5.  A trigram MATCH
  for a needle of length >= 3 is a sound *superset* of the substring
  matches (consecutive-trigram phrase), verified with ``instr``.
* ``cache_trigrams`` — the stdlib-only fallback: a hand-rolled trigram
  inverted index (``gram -> sid``).  Every trigram of a substring is a
  trigram of the containing string, so intersecting the needle's grams
  is likewise a sound superset for needles >= 3 characters; shorter
  needles scan the length window directly (the window index makes that
  a streamed range scan).

``instr`` is used for verification rather than ``LIKE``: ``LIKE`` needs
``%``/``_`` escaping and is ASCII-only case-insensitive, while both
sides here are already lower-cased in Python.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "KIND_MASK",
    "META_INDEX_FTS",
    "META_INDEX_BUILT",
    "fts5_trigram_available",
    "has_index_tables",
    "create_index_tables",
    "drop_index_tables",
    "populate_index_tables",
    "trigrams",
]

#: Kind bitmask values for ``cache_surfaces.kinds``.
KIND_MASK = {"predicate": 1, "class": 2, "literal": 4}

#: Meta keys recorded next to ``sapphire_cache_version`` in the file.
META_INDEX_FTS = "sapphire_index_fts"
META_INDEX_BUILT = "sapphire_index_built_s"

_TABLES = ("cache_surfaces", "cache_entries", "cache_trigrams", "cache_fts")

_DDL = """
CREATE TABLE cache_surfaces (
    sid          INTEGER PRIMARY KEY,
    surface      TEXT NOT NULL UNIQUE,
    length       INTEGER NOT NULL,
    significance INTEGER NOT NULL DEFAULT 0,
    kinds        INTEGER NOT NULL,
    pc_ord       INTEGER
);
CREATE INDEX idx_cache_surfaces_window ON cache_surfaces (length, surface);
CREATE INDEX idx_cache_surfaces_rank
    ON cache_surfaces (significance DESC, length, surface);
CREATE TABLE cache_entries (
    sid          INTEGER NOT NULL,
    seq          INTEGER NOT NULL,
    kind         TEXT NOT NULL,
    term_id      INTEGER NOT NULL,
    source_id    INTEGER,
    significance INTEGER NOT NULL DEFAULT 0,
    display      TEXT NOT NULL,
    PRIMARY KEY (sid, seq)
) WITHOUT ROWID;
"""

_DDL_TRIGRAMS = """
CREATE TABLE cache_trigrams (
    gram TEXT NOT NULL,
    sid  INTEGER NOT NULL,
    PRIMARY KEY (gram, sid)
) WITHOUT ROWID;
"""

_DDL_FTS = (
    "CREATE VIRTUAL TABLE cache_fts "
    "USING fts5(surface, content='', tokenize='trigram')"
)


def fts5_trigram_available(conn: sqlite3.Connection) -> bool:
    """True when this SQLite build has FTS5 with the trigram tokenizer."""
    try:
        conn.execute(
            "CREATE VIRTUAL TABLE temp.__fts_probe "
            "USING fts5(x, tokenize='trigram')"
        )
        conn.execute("DROP TABLE temp.__fts_probe")
        return True
    except sqlite3.OperationalError:
        return False


def has_index_tables(conn: sqlite3.Connection) -> bool:
    """True when the v3 index tables exist in this database."""
    row = conn.execute(
        "SELECT COUNT(*) FROM sqlite_master "
        "WHERE type IN ('table', 'view') "
        "AND name IN ('cache_surfaces', 'cache_entries')"
    ).fetchone()
    return bool(row and row[0] == 2)


def drop_index_tables(conn: sqlite3.Connection) -> None:
    for name in _TABLES:
        conn.execute(f"DROP TABLE IF EXISTS {name}")


def create_index_tables(conn: sqlite3.Connection, use_fts: bool) -> None:
    """(Re)create the index tables, choosing FTS5 or the trigram fallback."""
    drop_index_tables(conn)
    conn.executescript(_DDL)
    if use_fts:
        conn.execute(_DDL_FTS)
    else:
        conn.executescript(_DDL_TRIGRAMS)


def trigrams(surface: str) -> Sequence[str]:
    """The distinct character trigrams of ``surface`` (order-free)."""
    if len(surface) < 3:
        return ()
    return tuple({surface[i:i + 3] for i in range(len(surface) - 2)})


def populate_index_tables(
    conn: sqlite3.Connection,
    surface_rows: Iterable[Tuple[int, str, int, int, Optional[int]]],
    entry_rows: Iterable[Tuple[int, int, str, int, Optional[int], int, str]],
    use_fts: bool,
) -> None:
    """Fill freshly created index tables.

    ``surface_rows`` are ``(sid, surface, significance, kinds, pc_ord)``;
    ``entry_rows`` are ``(sid, seq, kind, term_id, source_id,
    significance, display)``.  Literal surfaces (``kinds & 4``) feed the
    substring index — FTS5 rows keyed by sid, or the trigram postings.
    """
    literal_bit = KIND_MASK["literal"]
    literal_sids = []
    for sid, surface, significance, kinds, pc_ord in surface_rows:
        conn.execute(
            "INSERT INTO cache_surfaces "
            "(sid, surface, length, significance, kinds, pc_ord) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (sid, surface, len(surface), significance, kinds, pc_ord),
        )
        if kinds & literal_bit:
            literal_sids.append((sid, surface))
    conn.executemany(
        "INSERT INTO cache_entries "
        "(sid, seq, kind, term_id, source_id, significance, display) "
        "VALUES (?, ?, ?, ?, ?, ?, ?)",
        entry_rows,
    )
    if use_fts:
        conn.executemany(
            "INSERT INTO cache_fts (rowid, surface) VALUES (?, ?)",
            literal_sids,
        )
    else:
        conn.executemany(
            "INSERT INTO cache_trigrams (gram, sid) VALUES (?, ?)",
            (
                (gram, sid)
                for sid, surface in literal_sids
                for gram in trigrams(surface)
            ),
        )
