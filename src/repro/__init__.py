"""Sapphire reproduction: interactive SPARQL query assistance over RDF.

This library reproduces "Sapphire: Querying RDF Data Made Simple"
(El-Roby, Ammar, Aboulnaga, Lin — VLDB 2016) end to end:

* ``repro.rdf`` / ``repro.store`` / ``repro.sparql`` — the RDF + SPARQL
  substrate (terms, triple store, query engine),
* ``repro.endpoint`` / ``repro.federation`` — the remote-endpoint
  simulator and a FedX-style federated query processor,
* ``repro.text`` — suffix tree, residual bins, similarity, lexicon,
* ``repro.data`` — the synthetic mini-DBpedia and the QALD-style workload,
* ``repro.core`` — Sapphire itself: initialization, cache, QCM, QSM,
  the server façade,
* ``repro.baselines`` — QAKiS, KBQA, S4 and SPARQLByE re-implementations,
* ``repro.eval`` — QALD metrics, the Table 1 harness, the simulated
  user study behind Figures 8–11.

Quickstart::

    from repro import quickstart_server

    server, dataset = quickstart_server()
    print(server.complete("spo").surfaces())          # QCM
    outcome = server.run_query(
        'SELECT ?w WHERE { ?t foaf:name "Tom Hanks"@en . ?t dbo:spouse ?w }'
    )
    print(outcome.answers.rows)
"""

from __future__ import annotations

from typing import Optional, Tuple

from .core.answer_table import AnswerTable
from .core.cache import SapphireCache
from .core.config import SapphireConfig
from .core.initialization import InitializationReport, initialize_endpoint
from .core.persistence import (
    load_cache,
    load_store,
    open_store,
    save_cache,
    save_store,
)
from .core.qcm import QueryCompletionModule
from .core.qsm_relax import StructureRelaxer
from .core.qsm_terms import AlternativeTermsFinder
from .core.sapphire import QueryBuilder, QueryOutcome, SapphireServer
from .data.generator import DatasetConfig, SyntheticDataset, build_dataset
from .endpoint.endpoint import EndpointConfig, SparqlEndpoint
from .federation.fedx import FederatedQueryProcessor
from .net import HttpSparqlEndpoint, SparqlHttpServer
from .rdf import IRI, BlankNode, Literal, Triple, TriplePattern, Variable
from .sparql import evaluate, parse_query
from .store import MemoryBackend, SQLiteBackend, TermDictionary, TripleStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SapphireServer",
    "SapphireConfig",
    "SapphireCache",
    "AnswerTable",
    "save_cache",
    "load_cache",
    "open_store",
    "save_store",
    "load_store",
    "QueryBuilder",
    "QueryOutcome",
    "QueryCompletionModule",
    "AlternativeTermsFinder",
    "StructureRelaxer",
    "initialize_endpoint",
    "InitializationReport",
    "SparqlEndpoint",
    "EndpointConfig",
    "FederatedQueryProcessor",
    "SparqlHttpServer",
    "HttpSparqlEndpoint",
    "TripleStore",
    "TermDictionary",
    "MemoryBackend",
    "SQLiteBackend",
    "parse_query",
    "evaluate",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Triple",
    "TriplePattern",
    "DatasetConfig",
    "SyntheticDataset",
    "build_dataset",
    "quickstart_server",
]


def quickstart_server(
    dataset_config: Optional[DatasetConfig] = None,
    sapphire_config: Optional[SapphireConfig] = None,
    endpoint_config: Optional[EndpointConfig] = None,
) -> Tuple[SapphireServer, SyntheticDataset]:
    """Build a synthetic dataset, wrap it in an endpoint, register it with
    a fresh Sapphire server, and return both — the three lines every
    example starts with.

    ``sapphire_config.storage_backend`` selects the storage engine: with
    ``"sqlite"`` the generated triples are materialized into a SQLite
    store (at ``storage_path``, or in-memory) so the dataset survives
    restarts and can be reopened with :func:`load_store`.  If the
    database file already holds triples from a previous run, that
    persisted dataset is served as-is (with the same generator config it
    is identical to a rebuild) — it is never merged with a fresh build.
    """
    config = sapphire_config or SapphireConfig(suffix_tree_capacity=500)
    dataset = build_dataset(dataset_config or DatasetConfig.tiny())
    if config.storage_backend != "memory":
        persistent = open_store(config)
        fingerprint = repr(dataset.config)  # deterministic dataclass repr
        stored = persistent.backend.get_meta("dataset_fingerprint")
        if len(persistent) == 0:
            persistent.add_all(dataset.store.triples())
            persistent.backend.set_meta("dataset_fingerprint", fingerprint)
        elif (stored != fingerprint if stored is not None
              else len(persistent) != len(dataset.store)):
            # The file holds a different dataset; serving it while
            # returning the fresh build's entity registry would hand the
            # caller IRIs that have no triples in the store.  Files
            # written by quickstart carry a config fingerprint; foreign
            # files fall back to the triple-count heuristic.
            persistent.close()
            raise ValueError(
                f"storage_path {config.storage_path!r} already holds a "
                f"different dataset ({len(persistent)} triples) — use a "
                "fresh path or the dataset_config it was built with"
            )
        dataset.store = persistent
    endpoint = SparqlEndpoint(
        dataset.store,
        endpoint_config or EndpointConfig(timeout_s=1.0),
        name="dbpedia-mini",
        execution=config.execution,
        batch_size=config.exec_batch_size,
    )
    server = SapphireServer(config)
    server.register_endpoint(endpoint)
    return server, dataset
