"""String similarity measures.

The QSM ranks alternative predicates and literals by Jaro–Winkler
similarity (Section 6.2.1: "JW similarity ... outperforms other
similarity measures in our context", θ = 0.7).  Levenshtein and a
normalized containment score are provided for the ablation benchmarks
that compare measures.
"""

from __future__ import annotations


__all__ = [
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "containment_similarity",
    "SIMILARITY_MEASURES",
]


def jaro(s1: str, s2: str) -> float:
    """Jaro similarity in [0, 1].

    Matches are characters equal within a window of
    ``max(|s1|,|s2|)//2 - 1``; the score combines match density with the
    transposition count.
    """
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if len1 == 0 or len2 == 0:
        return 0.0

    window = max(len1, len2) // 2 - 1
    if window < 0:
        window = 0

    s1_matched = [False] * len1
    s2_matched = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        lo = max(0, i - window)
        hi = min(len2, i + window + 1)
        for j in range(lo, hi):
            if s2_matched[j] or s2[j] != ch:
                continue
            s1_matched[i] = True
            s2_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    s2_indices = [j for j in range(len2) if s2_matched[j]]
    transpositions = 0
    k = 0
    for i in range(len1):
        if not s1_matched[i]:
            continue
        if s1[i] != s2[s2_indices[k]]:
            transpositions += 1
        k += 1
    transpositions //= 2

    m = float(matches)
    return (m / len1 + m / len2 + (m - transpositions) / m) / 3.0


def jaro_winkler(s1: str, s2: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro–Winkler similarity: Jaro boosted by the common prefix length.

    ``prefix_scale`` is Winkler's p (0.1 standard); the boost applies to at
    most ``max_prefix`` leading characters.  This favours strings that
    match from the beginning — exactly the behaviour the paper wants for
    predicate names typed left-to-right.
    """
    base = jaro(s1, s2)
    prefix = 0
    for c1, c2 in zip(s1, s2):
        if c1 != c2 or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def levenshtein(s1: str, s2: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if s1 == s2:
        return 0
    if not s1:
        return len(s2)
    if not s2:
        return len(s1)
    if len(s1) < len(s2):
        s1, s2 = s2, s1
    previous = list(range(len(s2) + 1))
    for i, c1 in enumerate(s1, start=1):
        current = [i]
        for j, c2 in enumerate(s2, start=1):
            cost = 0 if c1 == c2 else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(s1: str, s2: str) -> float:
    """Edit distance normalized to a [0, 1] similarity."""
    longest = max(len(s1), len(s2))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(s1, s2) / longest


def containment_similarity(s1: str, s2: str) -> float:
    """1.0 when one string contains the other, scaled by length ratio."""
    if not s1 or not s2:
        return 0.0
    shorter, longer = (s1, s2) if len(s1) <= len(s2) else (s2, s1)
    if shorter.lower() in longer.lower():
        return len(shorter) / len(longer)
    return 0.0


#: Registry used by the ablation benchmark comparing measures.
SIMILARITY_MEASURES: dict = {
    "jaro": jaro,
    "jaro_winkler": jaro_winkler,
    "levenshtein": levenshtein_similarity,
    "containment": containment_similarity,
}
