"""Text substrate: similarity, suffix tree, residual bins, lexicon."""

from .bins import BinTask, LiteralBins, assign_tasks, scan_bins
from .lexicon import Lexicon, default_lexicon, split_camel_case
from .similarity import (
    SIMILARITY_MEASURES,
    containment_similarity,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
)
from .suffix_tree import MAX_STRINGS, GeneralizedSuffixTree, sentinel_for

__all__ = [
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "containment_similarity",
    "SIMILARITY_MEASURES",
    "GeneralizedSuffixTree",
    "sentinel_for",
    "MAX_STRINGS",
    "LiteralBins",
    "BinTask",
    "assign_tasks",
    "scan_bins",
    "Lexicon",
    "default_lexicon",
    "split_camel_case",
]
