"""Residual literal bins and the parallel bin scan.

Literals that do not make it into the suffix tree are the *residual
literals* (Section 5.2).  Lookup over them is a sequential scan, which
Sapphire makes interactive by (1) organizing literals into bins keyed by
exact string length — ``bin(literal) = |literal|`` — so a length-bounded
search touches only a few bins, and (2) scanning the selected bins with P
parallel workers, assigning each worker an equal number of literals via
the contiguous-range scheme of **Algorithm 1**.

Algorithm 1 is implemented verbatim in :func:`assign_tasks` (and unit
tested against its stated invariants: every literal assigned exactly
once, per-worker load within one bin-remainder of the ideal d = n/P).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["LiteralBins", "BinTask", "assign_tasks", "scan_bins"]


@dataclass(frozen=True, slots=True)
class BinTask:
    """A contiguous slice of one bin assigned to one worker process."""

    process_id: int
    bin_index: int
    start: int
    end: int  # exclusive

    @property
    def size(self) -> int:
        return self.end - self.start


def assign_tasks(bin_sizes: Sequence[int], processes: int) -> List[BinTask]:
    """Algorithm 1: assign contiguous literal ranges to ``processes`` workers.

    Follows the paper's pseudocode: compute per-process capacity
    ``d = n / P``; walk the bins in order; if the remainder of the current
    bin fits in the current process's remaining capacity, assign it all,
    otherwise assign exactly the remaining capacity and advance to the
    next process.  Returns the flat task list (ordered by bin, then by
    process id).
    """
    if processes <= 0:
        raise ValueError("need at least one process")
    n = sum(bin_sizes)
    if n == 0:
        return []
    # Ceil so that rounding never leaves literals unassigned to a
    # non-existent P+1'th process.
    capacity = -(-n // processes)
    remaining = [capacity] * processes
    tasks: List[BinTask] = []
    pid = 0
    for bin_index, size in enumerate(bin_sizes):
        j = size  # literals remaining in this bin
        while j > 0:
            if pid >= processes:  # guard: last process absorbs rounding
                pid = processes - 1
                remaining[pid] = j
            if j <= remaining[pid]:
                tasks.append(BinTask(pid, bin_index, size - j, size))
                remaining[pid] -= j
                j = 0
                if remaining[pid] == 0:
                    pid += 1
            else:
                take = remaining[pid]
                tasks.append(BinTask(pid, bin_index, size - j, size - j + take))
                j -= take
                remaining[pid] = 0
                pid += 1
    return tasks


class LiteralBins:
    """Length-keyed bins of literal strings with parallel scanning.

    The bins store plain strings (the lexical forms) plus one integer
    *key* per literal — the Sapphire cache passes its surface IDs, so a
    scan hit maps back to cached terms without a string lookup; callers
    that never pass keys get a dense insertion index instead.  ``scan``
    applies an arbitrary predicate or scorer over the literals in a
    length range, parallelized over ``processes`` workers per
    Algorithm 1; the ``*_keyed`` variants return ``(key, literal)``
    pairs for ID-space consumers.
    """

    def __init__(self, literals: Optional[Iterable[str]] = None) -> None:
        self._bins: Dict[int, List[str]] = {}
        self._keys: Dict[int, List[int]] = {}
        self._count = 0
        if literals is not None:
            self.add_all(literals)

    def add(self, literal: str, key: Optional[int] = None) -> None:
        self._bins.setdefault(len(literal), []).append(literal)
        self._keys.setdefault(len(literal), []).append(
            self._count if key is None else key
        )
        self._count += 1

    def add_all(self, literals: Iterable[str]) -> None:
        for literal in literals:
            self.add(literal)

    def __len__(self) -> int:
        return self._count

    @property
    def bin_count(self) -> int:
        return len(self._bins)

    def bin_sizes(self) -> Dict[int, int]:
        """Map of literal length -> bin population."""
        return {length: len(bucket) for length, bucket in self._bins.items()}

    def lengths(self) -> List[int]:
        return sorted(self._bins.keys())

    def literals_of_length(self, length: int) -> List[str]:
        return list(self._bins.get(length, ()))

    def select_bins(self, min_len: int, max_len: int) -> List[Tuple[int, List[str]]]:
        """Bins whose length falls in [min_len, max_len], ascending."""
        return [
            (length, self._bins[length])
            for length in sorted(self._bins)
            if min_len <= length <= max_len
        ]

    def selectivity(self, min_len: int, max_len: int) -> float:
        """Fraction of all residual literals *eliminated* by the length
        filter — the paper reports this averages 46% for QCM lookups."""
        if self._count == 0:
            return 0.0
        searched = sum(len(bucket) for length, bucket in self._bins.items()
                       if min_len <= length <= max_len)
        return 1.0 - searched / self._count

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def scan(
        self,
        min_len: int,
        max_len: int,
        match: Callable[[str], bool],
        processes: int = 1,
    ) -> List[str]:
        """All literals of length in [min_len, max_len] satisfying ``match``.

        With ``processes > 1`` the scan is parallelized over a thread
        pool; the per-worker task ranges come from Algorithm 1 so each
        worker inspects an equal number of literals.
        """
        selected = self.select_bins(min_len, max_len)
        if not selected:
            return []
        buckets = [bucket for _, bucket in selected]
        return scan_bins(buckets, match, processes)

    def scan_keyed(
        self,
        min_len: int,
        max_len: int,
        match: Callable[[str], bool],
        processes: int = 1,
    ) -> List[Tuple[int, str]]:
        """Like :meth:`scan` but returns ``(key, literal)`` pairs."""
        selected = self.select_bins(min_len, max_len)
        if not selected:
            return []
        buckets = [bucket for _, bucket in selected]
        key_lists = [self._keys[length] for length, _ in selected]
        hits: List[Tuple[int, str]] = []

        def work(assignments: List[BinTask]) -> List[Tuple[int, str]]:
            found: List[Tuple[int, str]] = []
            for task in assignments:
                bucket = buckets[task.bin_index]
                keys = key_lists[task.bin_index]
                for offset in range(task.start, task.end):
                    literal = bucket[offset]
                    if match(literal):
                        found.append((keys[offset], literal))
            return found

        for chunk in _run_assignments(
            [len(b) for b in buckets], processes, work
        ):
            hits.extend(chunk)
        return hits

    def scan_scored(
        self,
        min_len: int,
        max_len: int,
        scorer: Callable[[str], float],
        threshold: float,
        processes: int = 1,
    ) -> List[Tuple[str, float]]:
        """Literals with ``scorer(lit) >= threshold`` in a length window.

        Used by the QSM's alternative-literal search (Jaro–Winkler with
        θ = 0.7); results are (literal, score), descending by score.
        """
        return [
            (literal, score)
            for _, literal, score in self.scan_scored_keyed(
                min_len, max_len, scorer, threshold, processes
            )
        ]

    def scan_scored_keyed(
        self,
        min_len: int,
        max_len: int,
        scorer: Callable[[str], float],
        threshold: float,
        processes: int = 1,
    ) -> List[Tuple[int, str, float]]:
        """Like :meth:`scan_scored` but yields ``(key, literal, score)``."""
        selected = self.select_bins(min_len, max_len)
        if not selected:
            return []
        buckets = [bucket for _, bucket in selected]
        key_lists = [self._keys[length] for length, _ in selected]
        results: List[Tuple[int, str, float]] = []

        def work(assignments: List[BinTask]) -> List[Tuple[int, str, float]]:
            hits: List[Tuple[int, str, float]] = []
            for task in assignments:
                bucket = buckets[task.bin_index]
                keys = key_lists[task.bin_index]
                for offset in range(task.start, task.end):
                    literal = bucket[offset]
                    score = scorer(literal)
                    if score >= threshold:
                        hits.append((keys[offset], literal, score))
            return hits

        for chunk in _run_assignments(
            [len(b) for b in buckets], processes, work
        ):
            results.extend(chunk)
        results.sort(key=lambda hit: (-hit[2], len(hit[1]), hit[1]))
        return results


def _run_assignments(bin_sizes: Sequence[int], processes: int, work):
    """Partition per Algorithm 1 and run ``work`` over each process's
    assignment list, in a thread pool when more than one worker has a
    non-empty assignment.  Yields each worker's result chunk."""
    tasks = assign_tasks(bin_sizes, processes)
    by_process: Dict[int, List[BinTask]] = {}
    for task in tasks:
        by_process.setdefault(task.process_id, []).append(task)
    if processes <= 1 or len(by_process) <= 1:
        for assignments in by_process.values():
            yield work(assignments)
        return
    with ThreadPoolExecutor(max_workers=len(by_process)) as pool:
        yield from pool.map(work, by_process.values())


def scan_bins(
    buckets: Sequence[List[str]],
    match: Callable[[str], bool],
    processes: int = 1,
) -> List[str]:
    """Scan ``buckets`` for literals satisfying ``match`` with P workers."""

    def work(assignments: List[BinTask]) -> List[str]:
        hits: List[str] = []
        for task in assignments:
            bucket = buckets[task.bin_index]
            for literal in bucket[task.start:task.end]:
                if match(literal):
                    hits.append(literal)
        return hits

    results: List[str] = []
    for chunk in _run_assignments([len(b) for b in buckets], processes, work):
        results.extend(chunk)
    return results
