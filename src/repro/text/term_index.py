"""Tiered term index: on-disk candidate lookups for the cache tail.

:class:`SqliteTermIndex` is the query-side companion of
:mod:`repro.store.term_tables`: it wraps one SQLite connection to a v3
cache file and serves the lookups the tiered cache routes past its hot
suffix tree —

* **substring** candidates over the *residual* literal surfaces
  (``substring_sids``), FTS5-trigram or trigram-posting prefiltered and
  always ``instr``-verified, streamed shortest-first so the results
  splice into the QCM's shortest-first fill exactly where a
  ``bins.scan_keyed`` result would;
* **fuzzy** candidates (``window_rows``): the α/β length window of the
  QSM's alternative-literal search as a streamed range scan — the
  Jaro–Winkler scoring stays in Python so tiered and in-memory paths
  share one scorer;
* a **predicate/class shortlist** (``pc_shortlist``) for the QSM's
  alternative-predicate search, built from character-count postings
  over the camel-split surface forms.

Residual membership is *derived*, not stored: the loader hands the
index the ranking boundary — the ``(significance, length, surface)``
tuple of the last literal that made the suffix tree at the configured
capacity — and residual rows are exactly the literal rows ranking
strictly after it.  This keeps tree capacity a load-time choice while
letting SQL filter the tail.

Soundness of the shortlists
---------------------------
Trigram prefilters are sound for *substring* search (every trigram of a
substring appears in the containing string) but **not** for
Jaro–Winkler: "abcdef" vs "badcfe" shares zero trigrams yet scores
~0.83.  The predicate shortlist therefore uses character counts: with
``jw = j + l*0.1*(1-j)`` and prefix ``l <= 4``, ``jw >= θ`` forces
``j >= (θ - 0.4) / 0.6``, and ``j <= (m/l1 + m/l2 + 1) / 3`` bounds the
match count ``m >= (3*jmin - 1) * l1*l2 / (l1 + l2)``; the multiset
character intersection is an upper bound on ``m``, so any candidate
whose shared-character count stays below the bound can never reach θ.
At θ <= 0.6 the bound degenerates and the shortlist declines to prune.
"""

from __future__ import annotations

import sqlite3
import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..store.term_tables import KIND_MASK, trigrams

__all__ = ["SqliteTermIndex"]

_LITERAL = KIND_MASK["literal"]

#: Residual-set descriptors: every literal row, no row, or the rows
#: ranking strictly after a ``(significance, length, surface)`` boundary.
_ALL = ("all",)
_NONE = ("none",)


class SqliteTermIndex:
    """Candidate lookups over one v3 cache file's index tables."""

    def __init__(
        self,
        conn: sqlite3.Connection,
        lock: Optional[threading.RLock] = None,
        fts: bool = False,
    ) -> None:
        self._conn = conn
        #: Serializes statements on the shared connection — completion
        #: handler threads and QSM scans share it.
        self._lock = lock if lock is not None else threading.RLock()
        self.fts = fts
        self._residual: tuple = _ALL
        self._histogram: Dict[int, int] = {}
        self._residual_count = 0
        self._pc_postings: List[Tuple[int, Counter, int]] = []

    # ------------------------------------------------------------------
    # Load-time configuration
    # ------------------------------------------------------------------

    def tree_plan(self, capacity: int):
        """The tree membership for ``capacity``, ranked exactly like
        ``SapphireCache.build_indexes``.

        Returns ``(pc_rows, literal_rows)``: ``(sid, surface,
        significance, kinds)`` tuples for the predicate/class surfaces
        in first-seen order, then ``(sid, surface, significance)`` for
        the top-ranked literals filling the remaining budget — and
        records the residual boundary.
        """
        with self._lock:
            pc_rows = self._conn.execute(
                "SELECT sid, surface, significance, kinds "
                "FROM cache_surfaces "
                "WHERE pc_ord IS NOT NULL ORDER BY pc_ord"
            ).fetchall()
            budget = max(0, capacity - len(pc_rows))
            if budget == 0:
                self._residual = _ALL
                literal_rows: list = []
            else:
                literal_rows = self._conn.execute(
                    "SELECT sid, surface, significance FROM cache_surfaces "
                    "WHERE (kinds & ?) != 0 "
                    "ORDER BY significance DESC, length, surface LIMIT ?",
                    (_LITERAL, budget),
                ).fetchall()
                if len(literal_rows) < budget:
                    self._residual = _NONE
                else:
                    sid, surface, significance = literal_rows[-1]
                    self._residual = (
                        "after", significance, len(surface), surface
                    )
            self._load_histogram()
        return pc_rows, literal_rows

    def _residual_sql(self) -> Tuple[str, tuple]:
        """The residual-membership predicate as ``(clause, params)``."""
        if self._residual == _NONE:
            return "0", ()
        clause = "(kinds & ?) != 0"
        params: tuple = (_LITERAL,)
        if self._residual[0] == "after":
            _, significance, length, surface = self._residual
            clause += (
                " AND (significance < ? OR (significance = ?"
                " AND (length > ? OR (length = ? AND surface > ?))))"
            )
            params += (significance, significance, length, length, surface)
        return clause, params

    def _load_histogram(self) -> None:
        clause, params = self._residual_sql()
        rows = self._conn.execute(
            f"SELECT length, COUNT(*) FROM cache_surfaces WHERE {clause} "
            "GROUP BY length",
            params,
        ).fetchall()
        self._histogram = {length: count for length, count in rows}
        self._residual_count = sum(self._histogram.values())

    def set_pc_norms(self, items: Iterable[Tuple[int, str]]) -> None:
        """Record the camel-split predicate/class forms, one per entry,
        as character-count postings for :meth:`pc_shortlist`."""
        self._pc_postings = [
            (sid, Counter(norm), len(norm)) for sid, norm in items
        ]

    # ------------------------------------------------------------------
    # Residual statistics (QCM's bins_searched_fraction parity)
    # ------------------------------------------------------------------

    @property
    def residual_count(self) -> int:
        return self._residual_count

    @property
    def residual_bin_count(self) -> int:
        return len(self._histogram)

    def selectivity(self, min_len: int, max_len: int) -> float:
        """Fraction of residual literals *eliminated* by the length
        filter — same convention as ``LiteralBins.selectivity``."""
        if self._residual_count == 0:
            return 0.0
        searched = sum(
            count for length, count in self._histogram.items()
            if min_len <= length <= max_len
        )
        return 1.0 - searched / self._residual_count

    # ------------------------------------------------------------------
    # Substring candidates (QCM tail lookup)
    # ------------------------------------------------------------------

    def substring_sids(
        self,
        needle: str,
        min_len: int,
        max_len: int,
        limit: Optional[int] = None,
    ) -> List[Tuple[int, str]]:
        """Residual surfaces containing ``needle`` within the length
        window, ordered ``(length, surface)`` — the QCM's shortest-first
        fill order — so a ``LIMIT`` keeps exactly the rows the in-memory
        sort would keep."""
        clause, params = self._residual_sql()
        if clause == "0":
            return []
        sql = (
            "SELECT sid, surface FROM cache_surfaces "
            f"WHERE length BETWEEN ? AND ? AND {clause} "
            "AND instr(surface, ?) > 0"
        )
        query_params: tuple = (min_len, max_len) + params + (needle,)
        if len(needle) >= 3:
            if self.fts:
                sql += (
                    " AND sid IN (SELECT rowid FROM cache_fts "
                    "WHERE cache_fts MATCH ?)"
                )
                query_params += ('"' + needle.replace('"', '""') + '"',)
            else:
                grams = trigrams(needle)
                marks = ", ".join("?" for _ in grams)
                sql += (
                    f" AND sid IN (SELECT sid FROM cache_trigrams "
                    f"WHERE gram IN ({marks}) "
                    "GROUP BY sid HAVING COUNT(*) = ?)"
                )
                query_params += tuple(grams) + (len(grams),)
        sql += " ORDER BY length, surface"
        if limit is not None:
            sql += " LIMIT ?"
            query_params += (limit,)
        with self._lock:
            return self._conn.execute(sql, query_params).fetchall()

    # ------------------------------------------------------------------
    # Fuzzy candidates (QSM literal window)
    # ------------------------------------------------------------------

    def window_rows(self, min_len: int, max_len: int) -> List[Tuple[int, str]]:
        """All residual ``(sid, surface)`` rows in a length window.

        The caller scores them (Jaro–Winkler) in Python: the scorer must
        be *identical* to the in-memory path's, and the window keeps the
        row count proportional to the window, not the lexicon.
        """
        clause, params = self._residual_sql()
        if clause == "0":
            return []
        with self._lock:
            return self._conn.execute(
                "SELECT sid, surface FROM cache_surfaces "
                f"WHERE length BETWEEN ? AND ? AND {clause}",
                (min_len, max_len) + params,
            ).fetchall()

    # ------------------------------------------------------------------
    # Predicate/class shortlist (QSM alternative predicates)
    # ------------------------------------------------------------------

    def pc_shortlist(self, forms: Iterable[str], theta: float):
        """Surface IDs whose camel-split form *could* reach ``theta``
        against any of ``forms`` — a sound superset, or ``None`` when
        the bound cannot prune (θ <= 0.6)."""
        jmin = (theta - 0.4) / 0.6
        coefficient = 3.0 * jmin - 1.0
        if coefficient <= 0.0:
            return None
        prepared = [(form, Counter(form), len(form)) for form in forms]
        passing = set()
        for sid, counts, norm_len in self._pc_postings:
            if sid in passing:
                continue
            for form, form_counts, form_len in prepared:
                if form_len == 0 or norm_len == 0:
                    passing.add(sid)  # degenerate: let the scorer decide
                    break
                needed = (
                    coefficient * form_len * norm_len / (form_len + norm_len)
                )
                shared = sum(
                    min(count, counts[ch])
                    for ch, count in form_counts.items()
                )
                if shared >= needed:
                    passing.add(sid)
                    break
        return passing

    # ------------------------------------------------------------------
    # Dictionary / entry fetches (lazy cache tier)
    # ------------------------------------------------------------------

    def entry_rows(self, sid: int):
        """``(kind, term_id, source_id, significance, display)`` rows of
        one surface bucket, in persisted (kind-rank) order."""
        with self._lock:
            return self._conn.execute(
                "SELECT kind, term_id, source_id, significance, display "
                "FROM cache_entries WHERE sid = ? ORDER BY seq",
                (sid,),
            ).fetchall()

    def surface_of(self, sid: int) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT surface FROM cache_surfaces WHERE sid = ?", (sid,)
            ).fetchone()
        return row[0] if row else None

    def surface_row(self, surface: str):
        """``(sid, significance)`` for a lower-cased surface, if interned."""
        with self._lock:
            return self._conn.execute(
                "SELECT sid, significance FROM cache_surfaces "
                "WHERE surface = ?",
                (surface,),
            ).fetchone()

    def term_row(self, term_id: int):
        with self._lock:
            return self._conn.execute(
                "SELECT kind, lexical, lang, datatype FROM terms "
                "WHERE id = ?",
                (term_id,),
            ).fetchone()

    def term_id_of(self, flat: tuple) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT id FROM terms WHERE kind = ? AND lexical = ? "
                "AND lang = ? AND datatype = ?",
                flat,
            ).fetchone()
        return row[0] if row else None

    def literal_surface_rows(self) -> List[Tuple[int, str]]:
        """Every literal ``(sid, surface)`` row, first-interned order —
        the (slow, export-only) full enumeration."""
        with self._lock:
            return self._conn.execute(
                "SELECT sid, surface FROM cache_surfaces "
                "WHERE (kinds & ?) != 0 ORDER BY sid",
                (_LITERAL,),
            ).fetchall()

    def significance_rows(self) -> List[Tuple[int, int]]:
        with self._lock:
            return self._conn.execute(
                "SELECT sid, significance FROM cache_surfaces "
                "WHERE significance > 0"
            ).fetchall()

    # ------------------------------------------------------------------
    # Counts and gauges (/stats)
    # ------------------------------------------------------------------

    def count_kind(self, kind: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM cache_entries WHERE kind = ?",
                (kind,),
            ).fetchone()
        return int(row[0])

    def n_surfaces(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM cache_surfaces"
            ).fetchone()
        return int(row[0])

    def gauges(self) -> Dict[str, int]:
        """Index size gauges for the ``/stats`` cache block."""
        with self._lock:
            pages = self._conn.execute("PRAGMA page_count").fetchone()[0]
            page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
            surfaces = self._conn.execute(
                "SELECT COUNT(*) FROM cache_surfaces"
            ).fetchone()[0]
        return {
            "index_surfaces": int(surfaces),
            "index_bytes": int(pages) * int(page_size),
            "index_fts": 1 if self.fts else 0,
        }
