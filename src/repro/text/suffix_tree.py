"""Generalized suffix tree (Ukkonen's on-line construction).

Section 5.2 indexes all predicates plus the most significant literals in
a suffix tree because the QCM's core lookup — *which indexed strings
contain the typed substring t?* — runs in ``O(|t| + z)`` on it.

Construction strategy
---------------------
We build one Ukkonen suffix tree over the concatenation of all input
strings, each terminated by a *unique* sentinel character drawn from the
Unicode private-use areas.  Unique terminators make every suffix of the
concatenation explicit (no suffix can be a prefix of another), so every
occurrence of a lookup string corresponds to a leaf.  A lookup string
never contains a sentinel, so a matched path can never span two inputs;
every leaf below the matched position identifies the suffix start offset,
which maps back to its source string via binary search over the
concatenation offsets.

This is the textbook linear-time construction: amortized O(n) over the
total input length, with suffix links, the active-point triple and the
three extension rules.  The paper notes the tree can be an order of
magnitude larger than its input — true here as well, which is exactly why
Sapphire puts only the *significant* literals in it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["GeneralizedSuffixTree", "sentinel_for", "MAX_STRINGS"]

#: Unicode private-use ranges supplying the unique terminators.
_PUA_RANGES = ((0xE000, 0xF8FF), (0xF0000, 0xFFFFD), (0x100000, 0x10FFFD))
MAX_STRINGS = sum(hi - lo + 1 for lo, hi in _PUA_RANGES)


def sentinel_for(index: int) -> str:
    """The unique terminator character for the ``index``-th input string."""
    for lo, hi in _PUA_RANGES:
        span = hi - lo + 1
        if index < span:
            return chr(lo + index)
        index -= span
    raise ValueError(f"suffix tree supports at most {MAX_STRINGS} strings")


def _is_sentinel(ch: str) -> bool:
    code = ord(ch)
    return any(lo <= code <= hi for lo, hi in _PUA_RANGES)


class _Node:
    """A suffix-tree node; the incoming edge is stored on the node itself
    as the half-open interval [start, end) into the concatenated text.
    ``end`` is None for leaves (implicitly the global end during build)."""

    __slots__ = ("start", "end", "children", "suffix_link", "suffix_index")

    def __init__(self, start: int, end: Optional[int]) -> None:
        self.start = start
        self.end = end
        self.children: Dict[str, "_Node"] = {}
        self.suffix_link: Optional["_Node"] = None
        self.suffix_index: int = -1  # set for leaves after construction


class GeneralizedSuffixTree:
    """Suffix tree over a collection of strings with substring search.

    Typical usage::

        tree = GeneralizedSuffixTree(["spouse", "almaMater", "New York"])
        tree.find_containing("ouse")      # -> ["spouse"]
        tree.contains_substring("w Yo")   # -> True
    """

    def __init__(self, strings: Optional[Iterable[str]] = None) -> None:
        self.strings: List[str] = []
        self._text = ""
        self._starts: List[int] = []
        self._root: Optional[_Node] = None
        if strings is not None:
            self.build(list(strings))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(self, strings: Sequence[str]) -> None:
        """(Re)build the tree over ``strings``.

        Raises ``ValueError`` when any input contains the sentinel.
        Duplicate inputs are kept (both ids are reported on match).
        """
        for s in strings:
            if any(_is_sentinel(ch) for ch in s):
                raise ValueError(
                    "input strings must not contain Unicode private-use characters"
                )
        self.strings = list(strings)
        pieces: List[str] = []
        self._starts = []
        offset = 0
        for index, s in enumerate(self.strings):
            self._starts.append(offset)
            pieces.append(s)
            pieces.append(sentinel_for(index))
            offset += len(s) + 1
        self._text = "".join(pieces)
        self._root = self._ukkonen(self._text)
        if self._root is not None:
            self._assign_suffix_indices()

    def _ukkonen(self, text: str) -> Optional[_Node]:
        if not text:
            return None
        root = _Node(-1, -1)
        root.suffix_link = root
        active_node = root
        active_edge = 0  # index into text of the active edge's first char
        active_length = 0
        remainder = 0
        global_end = [0]  # boxed so leaves can share it conceptually

        def edge_length(node: _Node) -> int:
            end = node.end if node.end is not None else global_end[0]
            return end - node.start

        for i, ch in enumerate(text):
            global_end[0] = i + 1
            remainder += 1
            last_internal: Optional[_Node] = None
            while remainder > 0:
                if active_length == 0:
                    active_edge = i
                edge_char = text[active_edge]
                child = active_node.children.get(edge_char)
                if child is None:
                    # Rule 2: new leaf directly under the active node.
                    leaf = _Node(i, None)
                    active_node.children[edge_char] = leaf
                    if last_internal is not None:
                        last_internal.suffix_link = active_node
                        last_internal = None
                else:
                    # Walk down if the active length spills past this edge.
                    length = edge_length(child)
                    if active_length >= length:
                        active_edge += length
                        active_length -= length
                        active_node = child
                        continue
                    if text[child.start + active_length] == ch:
                        # Rule 3: already present; move on (showstopper).
                        active_length += 1
                        if last_internal is not None:
                            last_internal.suffix_link = active_node
                            last_internal = None
                        break
                    # Rule 2 with split: introduce an internal node.
                    split = _Node(child.start, child.start + active_length)
                    active_node.children[edge_char] = split
                    leaf = _Node(i, None)
                    split.children[ch] = leaf
                    child.start += active_length
                    split.children[text[child.start]] = child
                    if last_internal is not None:
                        last_internal.suffix_link = split
                    last_internal = split
                remainder -= 1
                if active_node is root and active_length > 0:
                    active_length -= 1
                    active_edge = i - remainder + 1
                else:
                    active_node = active_node.suffix_link or root
        # Freeze leaf ends.
        n = len(text)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.end is None:
                node.end = n
            stack.extend(node.children.values())
        return root

    def _assign_suffix_indices(self) -> None:
        """Compute, for every leaf, the start offset of its suffix."""
        assert self._root is not None
        n = len(self._text)
        stack: List[Tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            edge = 0 if node.start < 0 else (node.end - node.start)  # type: ignore[operator]
            total = depth + edge
            if not node.children:
                node.suffix_index = n - total
                continue
            for child in node.children.values():
                stack.append((child, total))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _locate(self, pattern: str) -> Optional[_Node]:
        """Find the node at/below which all occurrences of ``pattern`` live."""
        if self._root is None or not pattern:
            return None
        if any(_is_sentinel(ch) for ch in pattern):
            return None
        node = self._root
        i = 0
        while i < len(pattern):
            child = node.children.get(pattern[i])
            if child is None:
                return None
            end = child.end
            assert end is not None
            j = child.start
            while j < end and i < len(pattern):
                if self._text[j] != pattern[i]:
                    return None
                i += 1
                j += 1
            node = child
        return node

    def contains_substring(self, pattern: str) -> bool:
        """True when any indexed string contains ``pattern``."""
        return self._locate(pattern) is not None

    def find_containing(self, pattern: str, limit: Optional[int] = None) -> List[str]:
        """All distinct indexed strings containing ``pattern``.

        ``limit`` stops the leaf walk once enough distinct strings were
        found — the QCM asks for k = 10 suggestions, so it never pays for
        the full occurrence list.  Runs in O(|pattern| + z).
        """
        ids = self.find_ids(pattern, limit)
        return [self.strings[i] for i in ids]

    def find_ids(self, pattern: str, limit: Optional[int] = None) -> List[int]:
        """Indices (into the build list) of strings containing ``pattern``."""
        node = self._locate(pattern)
        if node is None:
            return []
        found: List[int] = []
        seen: Set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if not current.children:
                string_id = self._string_for_offset(current.suffix_index)
                if string_id is not None and string_id not in seen:
                    seen.add(string_id)
                    found.append(string_id)
                    if limit is not None and len(found) >= limit:
                        return found
                continue
            stack.extend(current.children.values())
        return found

    def count_occurrences(self, pattern: str) -> int:
        """Number of occurrences of ``pattern`` across all indexed strings."""
        node = self._locate(pattern)
        if node is None:
            return 0
        count = 0
        stack = [node]
        while stack:
            current = stack.pop()
            if not current.children:
                if self._string_for_offset(current.suffix_index) is not None:
                    count += 1
                continue
            stack.extend(current.children.values())
        return count

    def _string_for_offset(self, offset: int) -> Optional[int]:
        """Map a concatenation offset to its source string id.

        Offsets that point *at* a sentinel (the suffix consisting of just
        separators/terminators) belong to no string and return None.
        """
        if offset >= len(self._text) or _is_sentinel(self._text[offset]):
            return None
        index = bisect_right(self._starts, offset) - 1
        return index if index >= 0 else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Total number of nodes — the paper's tree-size discussion."""
        if self._root is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def __len__(self) -> int:
        return len(self.strings)

    def __contains__(self, pattern: str) -> bool:
        return self.contains_substring(pattern)
