"""Lemon-style verbalization lexicon.

Section 6.2.1 expands each query predicate through the *DBpedia Lemon
Lexicon* before searching for similar dataset predicates: the lexicon
"provides knowledge about how properties, classes and individuals are
verbalized in natural language" — e.g. "wife" and "husband" both verbalize
``dbo:spouse``.

The original lexicon is a hand-built RDF resource; we reproduce its role
with an in-memory lexicon pre-seeded with the verbalization groups the
DBpedia ontology subset used by our synthetic dataset needs, plus an API
to register more.  Lookup is symmetric: given *any* surface form in a
group (or a predicate IRI local name), all forms in the group come back.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence, Set

from ..rdf.terms import IRI

__all__ = ["Lexicon", "default_lexicon", "split_camel_case"]


_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def split_camel_case(name: str) -> str:
    """``almaMater`` -> ``alma mater`` — the standard IRI verbalization."""
    return _CAMEL_RE.sub(" ", name).replace("_", " ").lower()


class Lexicon:
    """Symmetric groups of natural-language verbalizations.

    Each group is a set of surface forms considered interchangeable when
    looking for alternative predicates ("wife" ~ "husband" ~ "spouse").
    """

    def __init__(self) -> None:
        self._groups: List[Set[str]] = []
        self._index: Dict[str, List[int]] = {}

    def register(self, forms: Iterable[str]) -> None:
        """Add a verbalization group (forms are lower-cased)."""
        group = {form.strip().lower() for form in forms if form.strip()}
        if len(group) < 1:
            return
        group_id = len(self._groups)
        self._groups.append(group)
        for form in group:
            self._index.setdefault(form, []).append(group_id)

    def get_lexica(self, term) -> List[str]:
        """All verbalizations for ``term`` (IRI or surface string).

        Always includes the term's own surface form(s); for an IRI the
        camel-case-split local name is used ("almaMater" -> "alma mater").
        Mirrors ``Lemon.getLexica(e)`` in Algorithm 2.
        """
        if isinstance(term, IRI):
            surface = split_camel_case(term.local_name())
        else:
            surface = str(term).strip().lower()
        forms: List[str] = []

        def extend(items: Iterable[str]) -> None:
            for item in items:
                if item not in forms:
                    forms.append(item)

        extend([surface])
        for group_id in self._index.get(surface, ()):  # exact-form groups
            extend(sorted(self._groups[group_id]))
        # Single-word fallback: each word of a multi-word surface form may
        # hit a group on its own ("alma mater" -> "alma", "mater").
        for word in surface.split():
            for group_id in self._index.get(word, ()):
                extend(sorted(self._groups[group_id]))
        return forms

    def synonyms(self, form: str) -> List[str]:
        """Verbalizations equivalent to ``form``, excluding itself."""
        return [f for f in self.get_lexica(form) if f != form.strip().lower()]

    def __len__(self) -> int:
        return len(self._groups)


#: Verbalization groups mirroring the DBpedia Lemon lexicon entries that
#: matter for the ontology subset of the synthetic dataset.
_DEFAULT_GROUPS: Sequence[Sequence[str]] = (
    ("spouse", "wife", "husband", "married to", "married", "wedded", "partner"),
    ("alma mater", "graduated from", "graduated", "studied at", "university attended", "educated at"),
    ("author", "writer", "written by", "wrote"),
    ("director", "directed by", "film director", "directed"),
    ("starring", "actor", "stars", "acted in", "cast member"),
    ("birth place", "born in", "place of birth", "birthplace"),
    ("death place", "died in", "place of death", "deathplace"),
    ("birth date", "born on", "date of birth", "birthday", "birthdays"),
    ("death date", "died on", "date of death"),
    ("population total", "population", "people living", "inhabitants", "number of people"),
    ("publisher", "published by", "publishing house"),
    ("number of pages", "pages", "page count", "length in pages"),
    ("budget", "cost", "production budget"),
    ("revenue", "income", "earnings", "turnover"),
    ("time zone", "timezone"),
    ("currency", "money", "legal tender"),
    ("designer", "designed by", "architect"),
    ("creator", "created by", "founder", "founded by"),
    ("child", "children", "son", "daughter", "offspring"),
    ("parent", "parents", "father", "mother"),
    ("instrument", "instruments", "plays", "played instrument"),
    ("located in", "location", "situated in", "is in", "state", "country of location"),
    ("capital", "capital city"),
    ("industry", "sector", "business", "works in"),
    ("affiliation", "affiliated with", "member of"),
    ("vice president", "vice-president", "deputy"),
    ("depth", "deep", "how deep"),
    ("surname", "family name", "last name"),
    ("nick name", "nickname", "called", "known as", "alias"),
    ("type", "kind", "category", "class"),
    ("label", "name", "title"),
    ("source country", "origin country", "starts in", "source"),
    ("mouth country", "ends in", "mouth"),
    ("chess player", "chess grandmaster"),
    ("scientist", "researcher"),
    ("film", "movie", "motion picture"),
    ("book", "novel", "publication"),
    ("company", "corporation", "firm", "business"),
    ("city", "town", "municipality"),
    ("president", "head of state"),
)


def default_lexicon() -> Lexicon:
    """The lexicon pre-seeded with the default verbalization groups."""
    lexicon = Lexicon()
    for group in _DEFAULT_GROUPS:
        lexicon.register(group)
    return lexicon
