"""SPARQL 1.1 Protocol over the network: HTTP server, wire formats, client.

The paper's Sapphire talks to *real* remote endpoints (DBpedia's
``/sparql`` and friends).  This package is the network layer that makes
the reproduction do the same, stdlib-only:

* :mod:`repro.net.formats` — SPARQL Results JSON/XML/CSV/TSV writers and
  a JSON parser, plus Accept-header content negotiation;
* :mod:`repro.net.wsgi` — the protocol logic as a WSGI app with
  admission control (bounded workers, bounded queue → 503; deadlines →
  504) and ``/health`` + ``/stats`` + ``/stats/series`` observability;
* :mod:`repro.net.metrics` — per-route serving counters with fixed
  log-scale latency histograms, queue gauges, and the bounded stats
  time series behind ``/stats/series``;
* :mod:`repro.net.server` — a ``ThreadingHTTPServer`` harness binding
  the app to a socket (``repro serve`` uses it);
* :mod:`repro.net.client` — :class:`HttpSparqlEndpoint`, a drop-in
  endpoint whose queries go over the wire, so the federation engine
  federates live HTTP endpoints unchanged; and
  :class:`HttpSapphireClient`, which drives a remote Sapphire's
  Predictive User Model through the ``/complete``/``/suggest`` routes;
* :mod:`repro.net.suggest` — the suggestion API's canonical JSON wire
  format (shared by server and client, so loopback responses are
  byte-identical to in-process results).
"""

from .client import (
    ConnectionFailed,
    HttpSapphireClient,
    HttpSparqlEndpoint,
    fetch_slow_log,
    fetch_stats,
    fetch_stats_series,
    server_root,
)
from .formats import (
    MIME_CSV,
    MIME_JSON,
    MIME_TSV,
    MIME_XML,
    FormatError,
    NotAcceptable,
    negotiate,
    parse_json,
    write_csv,
    write_json,
    write_tsv,
    write_xml,
)
from .metrics import (
    LatencyHistogram,
    SlowQueryLog,
    StatsTimeSeries,
    merge_stats_bodies,
    route_deltas,
)
from .prefork import PreforkServer, build_backend_from_spec, prepare_snapshots
from .server import SparqlHttpServer
from .suggest import (
    RemoteCompletion,
    RemoteCompletionResult,
    RemoteOutcome,
    RemoteSuggestion,
    completion_document,
    dump_document,
    outcome_document,
    parse_completion,
    parse_outcome,
)
from .wsgi import ServerStats, SparqlWsgiApp

__all__ = [
    "HttpSparqlEndpoint",
    "HttpSapphireClient",
    "ConnectionFailed",
    "LatencyHistogram",
    "SlowQueryLog",
    "StatsTimeSeries",
    "route_deltas",
    "fetch_slow_log",
    "fetch_stats",
    "fetch_stats_series",
    "server_root",
    "RemoteCompletion",
    "RemoteCompletionResult",
    "RemoteOutcome",
    "RemoteSuggestion",
    "completion_document",
    "outcome_document",
    "dump_document",
    "parse_completion",
    "parse_outcome",
    "SparqlHttpServer",
    "SparqlWsgiApp",
    "ServerStats",
    "PreforkServer",
    "build_backend_from_spec",
    "prepare_snapshots",
    "merge_stats_bodies",
    "FormatError",
    "NotAcceptable",
    "negotiate",
    "parse_json",
    "write_json",
    "write_xml",
    "write_csv",
    "write_tsv",
    "MIME_JSON",
    "MIME_XML",
    "MIME_CSV",
    "MIME_TSV",
]
