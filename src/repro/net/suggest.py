"""Wire format of the HTTP suggestion API (``/complete``, ``/suggest``).

The Predictive User Model travels as JSON documents with a **canonical
byte encoding**: :func:`dump_document` fixes key order and separators,
so the bytes a :class:`~repro.net.wsgi.SparqlWsgiApp` serves for a
completion are identical to the bytes :func:`completion_document` +
:func:`dump_document` produce in-process — the parity gate the
suggestion API is held to (``tests/test_suggestion_api.py``).

Documents deliberately carry no timings: latency is measured by whoever
wants it (the client, ``/stats``), and keeping the payload a pure
function of the suggestion content is what makes byte-identity a
meaningful correctness check.

The ``Remote*`` containers are the client-side view: they mirror the
in-process result surfaces closely enough that code driving a local
:class:`~repro.core.sapphire.SapphireServer` can drive a remote one
through :class:`~repro.net.client.HttpSapphireClient` unchanged —
``surfaces()``, ``message()``, prefetched answers and all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sparql.results import SelectResult
from .formats import FormatError, parse_json, write_json

__all__ = [
    "MIME_JSON_BODY",
    "completion_document",
    "outcome_document",
    "dump_document",
    "parse_completion",
    "parse_outcome",
    "RemoteCompletion",
    "RemoteCompletionResult",
    "RemoteSuggestion",
    "RemoteOutcome",
]

#: Content type of every suggestion-API request and response body.
MIME_JSON_BODY = "application/json"


def dump_document(document: Dict) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8."""
    return json.dumps(
        document, ensure_ascii=False, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Server side: result -> document
# ----------------------------------------------------------------------


def completion_document(result) -> Dict:
    """A :class:`~repro.core.qcm.CompletionResult` as a wire document."""
    return {
        "term": result.term,
        "tree_hit": result.tree_hit,
        "completions": [
            {
                "surface": completion.surface,
                "kinds": list(completion.kinds),
                "source": completion.source,
            }
            for completion in result.completions
        ],
    }


def outcome_document(outcome) -> Dict:
    """A :class:`~repro.core.sapphire.QueryOutcome` as a wire document.

    Answers (and each suggestion's prefetched answers) embed as SPARQL
    Results JSON sub-documents, so both ends reuse the protocol
    serializers — the suggestion API can never disagree with ``/sparql``
    about how a row looks.
    """
    return {
        "query": outcome.query_text,
        "answers": json.loads(write_json(outcome.answers)),
        "term_suggestions": [
            {
                "kind": suggestion.kind,
                "triple_index": suggestion.triple_index,
                "position": suggestion.position,
                "original": suggestion.original.n3(),
                "replacement": suggestion.replacement.n3(),
                "similarity": suggestion.similarity,
                "query": suggestion.query_text,
                "n_answers": suggestion.n_answers,
                "message": suggestion.message(),
                "answers": (
                    json.loads(write_json(suggestion.prefetched))
                    if suggestion.prefetched is not None else None
                ),
            }
            for suggestion in outcome.term_suggestions
        ],
        "relaxations": [
            {
                "query": relaxation.query_text,
                "n_answers": relaxation.n_answers,
                "terminals": [term.n3() for term in relaxation.terminals],
                "queries_used": relaxation.queries_used,
                "message": relaxation.message(),
                "answers": (
                    json.loads(write_json(relaxation.prefetched))
                    if relaxation.prefetched is not None else None
                ),
            }
            for relaxation in outcome.relaxations
        ],
    }


# ----------------------------------------------------------------------
# Client side: document -> remote containers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RemoteCompletion:
    """One completion as seen over the wire."""

    surface: str
    kinds: Tuple[str, ...]
    source: str  # "tree" | "bins"


@dataclass
class RemoteCompletionResult:
    """Mirror of :class:`~repro.core.qcm.CompletionResult` minus timings."""

    term: str
    tree_hit: bool = False
    completions: List[RemoteCompletion] = field(default_factory=list)

    def surfaces(self) -> List[str]:
        return [completion.surface for completion in self.completions]

    def __len__(self) -> int:
        return len(self.completions)


@dataclass
class RemoteSuggestion:
    """One QSM suggestion (term change or relaxation) over the wire."""

    category: str  # "term" | "relaxation"
    query_text: str
    n_answers: int
    message_text: str
    kind: Optional[str] = None  # term suggestions: "predicate" | "literal"
    similarity: Optional[float] = None
    prefetched: Optional[SelectResult] = None

    def message(self) -> str:
        return self.message_text


@dataclass
class RemoteOutcome:
    """Mirror of :class:`~repro.core.sapphire.QueryOutcome` over the wire."""

    query_text: str
    answers: SelectResult
    term_suggestions: List[RemoteSuggestion] = field(default_factory=list)
    relaxations: List[RemoteSuggestion] = field(default_factory=list)

    @property
    def has_answers(self) -> bool:
        return bool(self.answers.rows)

    @property
    def all_suggestions(self) -> List[RemoteSuggestion]:
        return list(self.term_suggestions) + list(self.relaxations)


def _parse_answers(sub_document) -> Optional[SelectResult]:
    if sub_document is None:
        return None
    result = parse_json(json.dumps(sub_document))
    if not isinstance(result, SelectResult):
        raise FormatError("suggestion answers must be a SELECT result")
    return result


def parse_completion(payload) -> RemoteCompletionResult:
    """Parse a ``/complete`` response body."""
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FormatError(f"completion response is not JSON: {exc}") from exc
    if not isinstance(document, dict) or "completions" not in document:
        raise FormatError("completion response missing 'completions'")
    return RemoteCompletionResult(
        term=str(document.get("term", "")),
        tree_hit=bool(document.get("tree_hit", False)),
        completions=[
            RemoteCompletion(
                surface=str(item["surface"]),
                kinds=tuple(item.get("kinds", ())),
                source=str(item.get("source", "")),
            )
            for item in document["completions"]
        ],
    )


def parse_outcome(payload) -> RemoteOutcome:
    """Parse a ``/suggest`` response body."""
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise FormatError(f"suggest response is not JSON: {exc}") from exc
    if not isinstance(document, dict) or "answers" not in document:
        raise FormatError("suggest response missing 'answers'")
    answers = _parse_answers(document["answers"])
    assert answers is not None
    outcome = RemoteOutcome(
        query_text=str(document.get("query", "")), answers=answers
    )
    for item in document.get("term_suggestions", ()):
        outcome.term_suggestions.append(RemoteSuggestion(
            category="term",
            query_text=str(item.get("query", "")),
            n_answers=int(item.get("n_answers", 0)),
            message_text=str(item.get("message", "")),
            kind=item.get("kind"),
            similarity=item.get("similarity"),
            prefetched=_parse_answers(item.get("answers")),
        ))
    for item in document.get("relaxations", ()):
        outcome.relaxations.append(RemoteSuggestion(
            category="relaxation",
            query_text=str(item.get("query", "")),
            n_answers=int(item.get("n_answers", 0)),
            message_text=str(item.get("message", "")),
            prefetched=_parse_answers(item.get("answers")),
        ))
    return outcome
