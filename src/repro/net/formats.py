"""SPARQL 1.1 Query Results serialization and parsing.

The wire formats spoken by the HTTP subsystem:

* **SPARQL Results JSON** (https://www.w3.org/TR/sparql11-results-json/)
  — writer *and* parser; this is the format the bundled client requests.
* **SPARQL Results XML** (https://www.w3.org/TR/rdf-sparql-XMLres/) — writer.
* **CSV/TSV** (https://www.w3.org/TR/sparql11-results-csv-tsv/) — writers.
  CSV carries plain lexical values (lossy by design); TSV carries
  N-Triples-encoded terms.

All writers take the library's :class:`~repro.sparql.results.SelectResult`
or :class:`~repro.sparql.results.AskResult` containers and return text;
:func:`parse_json` is the exact inverse of :func:`write_json` so a result
round-trips the network losslessly (datatypes, language tags, and blank
node labels included).

:func:`negotiate` implements the Accept-header content negotiation the
server uses, with q-values and the usual ``*/*`` wildcards.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Callable, Dict, List, Optional, Tuple, Union
from xml.sax.saxutils import escape, quoteattr

from ..rdf.terms import IRI, BlankNode, Literal, Term
from ..rdf.triples import Binding
from ..sparql.results import AskResult, SelectResult

__all__ = [
    "MIME_JSON",
    "MIME_XML",
    "MIME_CSV",
    "MIME_TSV",
    "RESULT_WRITERS",
    "FormatError",
    "NotAcceptable",
    "term_to_json",
    "term_from_json",
    "write_json",
    "parse_json",
    "write_xml",
    "write_csv",
    "write_tsv",
    "negotiate",
]

MIME_JSON = "application/sparql-results+json"
MIME_XML = "application/sparql-results+xml"
MIME_CSV = "text/csv"
MIME_TSV = "text/tab-separated-values"

Result = Union[SelectResult, AskResult]


class FormatError(ValueError):
    """A response document does not conform to the results format."""


class NotAcceptable(ValueError):
    """No offered result format satisfies the Accept header."""


# ----------------------------------------------------------------------
# JSON (writer + parser)
# ----------------------------------------------------------------------

def term_to_json(term: Term) -> Dict[str, str]:
    """One RDF term as a SPARQL-Results-JSON binding object."""
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        obj: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.lang:
            obj["xml:lang"] = term.lang
        elif term.datatype is not None:
            obj["datatype"] = term.datatype.value
        return obj
    raise FormatError(f"cannot serialize non-ground term {term!r}")


def term_from_json(obj: Dict[str, str]) -> Term:
    """Inverse of :func:`term_to_json` (also accepts the legacy
    ``typed-literal`` type emitted by older Virtuoso builds)."""
    try:
        kind = obj["type"]
        value = obj["value"]
    except (TypeError, KeyError) as exc:
        raise FormatError(f"malformed binding object {obj!r}") from exc
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BlankNode(value)
    if kind in ("literal", "typed-literal"):
        lang = obj.get("xml:lang")
        datatype = obj.get("datatype")
        if lang:
            return Literal(value, lang=lang)
        return Literal(value, datatype=IRI(datatype) if datatype else None)
    raise FormatError(f"unknown term type {kind!r}")


def write_json(result: Result) -> str:
    """Serialize a result as SPARQL Results JSON."""
    if isinstance(result, AskResult):
        return json.dumps({"head": {}, "boolean": bool(result.value)})
    bindings = [
        {name: term_to_json(term) for name, term in row.items() if term is not None}
        for row in result.rows
    ]
    return json.dumps(
        {"head": {"vars": list(result.variables)},
         "results": {"bindings": bindings}}
    )


def parse_json(text: Union[str, bytes]) -> Result:
    """Parse a SPARQL Results JSON document into a result container."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"response is not JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise FormatError("results document must be a JSON object")
    if "boolean" in document:
        value = document["boolean"]
        if not isinstance(value, bool):
            raise FormatError(f"ASK boolean must be true/false, got {value!r}")
        return AskResult(value)
    try:
        variables = list(document["head"]["vars"])
        raw_bindings = document["results"]["bindings"]
    except (TypeError, KeyError) as exc:
        raise FormatError("document lacks head.vars / results.bindings") from exc
    rows: List[Binding] = []
    for raw in raw_bindings:
        if not isinstance(raw, dict):
            raise FormatError(f"binding must be an object, got {raw!r}")
        rows.append({name: term_from_json(obj) for name, obj in raw.items()})
    return SelectResult(variables=variables, rows=rows)


# ----------------------------------------------------------------------
# XML (writer)
# ----------------------------------------------------------------------

def _term_to_xml(name: str, term: Term) -> str:
    if isinstance(term, IRI):
        inner = f"<uri>{escape(term.value)}</uri>"
    elif isinstance(term, BlankNode):
        inner = f"<bnode>{escape(term.label)}</bnode>"
    elif isinstance(term, Literal):
        if term.lang:
            attr = f" xml:lang={quoteattr(term.lang)}"
        elif term.datatype is not None:
            attr = f" datatype={quoteattr(term.datatype.value)}"
        else:
            attr = ""
        inner = f"<literal{attr}>{escape(term.lexical)}</literal>"
    else:
        raise FormatError(f"cannot serialize non-ground term {term!r}")
    return f"<binding name={quoteattr(name)}>{inner}</binding>"


def write_xml(result: Result) -> str:
    """Serialize a result as SPARQL Results XML."""
    lines = [
        '<?xml version="1.0"?>',
        '<sparql xmlns="http://www.w3.org/2005/sparql-results#">',
    ]
    if isinstance(result, AskResult):
        lines.append("  <head></head>")
        lines.append(f"  <boolean>{'true' if result.value else 'false'}</boolean>")
    else:
        lines.append("  <head>")
        for name in result.variables:
            lines.append(f"    <variable name={quoteattr(name)}/>")
        lines.append("  </head>")
        lines.append("  <results>")
        for row in result.rows:
            cells = "".join(
                _term_to_xml(name, term)
                for name, term in row.items() if term is not None
            )
            lines.append(f"    <result>{cells}</result>")
        lines.append("  </results>")
    lines.append("</sparql>")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CSV / TSV (writers)
# ----------------------------------------------------------------------

def _csv_value(term: Optional[Term]) -> str:
    """Plain lexical value per the CSV results spec (lossy)."""
    if term is None:
        return ""
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    if isinstance(term, Literal):
        return term.lexical
    raise FormatError(f"cannot serialize non-ground term {term!r}")


def write_csv(result: Result) -> str:
    """Serialize as SPARQL Results CSV (RFC 4180 quoting, CRLF rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    if isinstance(result, AskResult):
        writer.writerow(["boolean"])
        writer.writerow(["true" if result.value else "false"])
        return buffer.getvalue()
    writer.writerow(result.variables)
    for row in result.rows:
        writer.writerow([_csv_value(row.get(name)) for name in result.variables])
    return buffer.getvalue()


def write_tsv(result: Result) -> str:
    """Serialize as SPARQL Results TSV (N-Triples-encoded terms)."""
    if isinstance(result, AskResult):
        return "?boolean\n%s\n" % ("true" if result.value else "false")
    lines = ["\t".join(f"?{name}" for name in result.variables)]
    for row in result.rows:
        cells = []
        for name in result.variables:
            term = row.get(name)
            if term is None:
                cells.append("")
            else:
                # n3() escapes \n but not the other record separators a
                # TSV consumer splits on; escape them at the cell level.
                cells.append(term.n3().replace("\t", "\\t").replace("\r", "\\r"))
        lines.append("\t".join(cells))
    return "\n".join(lines) + "\n"


RESULT_WRITERS: Dict[str, Callable[[Result], str]] = {
    MIME_JSON: write_json,
    MIME_XML: write_xml,
    MIME_CSV: write_csv,
    MIME_TSV: write_tsv,
}

#: Accept-header media types mapped onto the canonical result type.
_MEDIA_ALIASES: Dict[str, str] = {
    MIME_JSON: MIME_JSON,
    "application/json": MIME_JSON,
    MIME_XML: MIME_XML,
    "application/xml": MIME_XML,
    "text/xml": MIME_XML,
    MIME_CSV: MIME_CSV,
    MIME_TSV: MIME_TSV,
}


def _parse_accept(header: str) -> List[Tuple[str, float]]:
    """``Accept`` entries as (media-range, q) pairs, most-preferred first."""
    entries: List[Tuple[float, int, str]] = []
    for index, part in enumerate(header.split(",")):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(";")
        media = pieces[0].strip().lower()
        q = 1.0
        for param in pieces[1:]:
            param = param.strip()
            if param.startswith("q="):
                try:
                    q = float(param[2:])
                except ValueError:
                    q = 0.0
        entries.append((q, index, media))
    # Highest q wins; ties break on header order.
    entries.sort(key=lambda e: (-e[0], e[1]))
    return [(media, q) for q, _, media in entries]


def negotiate(accept: Optional[str]) -> Tuple[str, Callable[[Result], str]]:
    """Pick the result format for an ``Accept`` header value.

    Returns ``(mime_type, writer)``.  A missing/empty header and full
    wildcards resolve to SPARQL Results JSON; an Accept header that rules
    out every supported format raises :class:`NotAcceptable`.
    """
    if not accept or not accept.strip():
        return MIME_JSON, write_json
    for media, q in _parse_accept(accept):
        if q <= 0:
            continue
        if media in ("*/*", "application/*"):
            return MIME_JSON, write_json
        if media == "text/*":
            return MIME_CSV, write_csv
        canonical = _MEDIA_ALIASES.get(media)
        if canonical is not None:
            return canonical, RESULT_WRITERS[canonical]
    raise NotAcceptable(f"no supported result format in Accept: {accept!r}")
