"""Serving observability: per-route latency histograms and time series.

This module is the telemetry substrate the load harness
(:mod:`repro.eval.replay`) gates against and the one later learned
components (ranker / cost model) will consume:

* :class:`LatencyHistogram` — a **fixed log-scale bucket** histogram.
  Unlike the reservoir the server used before, a histogram never drops
  samples, merges across routes and processes by integer addition, and
  serializes to a compact JSON shape whose buckets are stable across
  runs (the bucket boundaries are a module constant, not data).
* :class:`ServerStats` — thread-safe serving counters, now **per
  route** (``sparql`` / ``complete`` / ``suggest``), each route with
  its own outcome counters and served-latency histogram, plus
  queue-depth/admission high-water gauges.
* :class:`StatsTimeSeries` — a bounded series of stats snapshots; the
  WSGI app appends one point per ``GET /stats/series`` call, so a load
  driver's tick *is* the sampling clock and two drivers never fight
  over a server-side timer.

Latency percentiles cover **served (200) requests only** — mixing in
microsecond 503 rejects would collapse p50 toward zero exactly when the
server is overloaded and the numbers matter (regression-tested in
``tests/test_replay.py``).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_BOUNDS_S",
    "LatencyHistogram",
    "ServerStats",
    "SlowQueryLog",
    "StatsTimeSeries",
    "ROUTES",
    "merge_stats_bodies",
]

#: Request routes the server accounts separately.
ROUTES = ("sparql", "complete", "suggest")


def _log_bounds(start_s: float = 1e-4, stop_s: float = 120.0,
                per_decade: int = 20) -> Tuple[float, ...]:
    """Bucket upper bounds from ``start_s`` growing 10^(1/per_decade)."""
    growth = 10.0 ** (1.0 / per_decade)
    bounds: List[float] = []
    value = start_s
    while value < stop_s:
        bounds.append(value)
        value *= growth
    bounds.append(value)
    return tuple(bounds)


#: Fixed log-scale bucket upper bounds, in seconds: 0.1 ms → 120 s at
#: 20 buckets per decade (~12% resolution).  Identical in every process,
#: so histograms from driver workers and the server merge bucket-wise.
BUCKET_BOUNDS_S: Tuple[float, ...] = _log_bounds()

_GROWTH = 10.0 ** (1.0 / 20.0)


class LatencyHistogram:
    """Streaming latency distribution over the fixed log-scale buckets.

    Not internally locked: callers that share an instance across
    threads must serialize access (``ServerStats`` guards its route
    histograms with its own lock; the replay driver's per-worker
    ledgers do the same).
    """

    __slots__ = ("counts", "overflow", "total", "sum_s", "max_s")

    def __init__(self) -> None:
        self.counts = [0] * len(BUCKET_BOUNDS_S)
        self.overflow = 0
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        index = bisect_left(BUCKET_BOUNDS_S, seconds)
        if index >= len(BUCKET_BOUNDS_S):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total += 1
        self.sum_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s buckets into this histogram (same bounds)."""
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.overflow += other.overflow
        self.total += other.total
        self.sum_s += other.sum_s
        self.max_s = max(self.max_s, other.max_s)

    @staticmethod
    def merged(histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        out = LatencyHistogram()
        for histogram in histograms:
            out.merge(histogram)
        return out

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimate in seconds.

        Returns the geometric midpoint of the bucket holding the rank
        (≤ ~6% off for the 20-per-decade bounds); 0.0 when empty.
        """
        if self.total == 0:
            return 0.0
        # Nearest rank: the smallest bucket whose cumulative count
        # reaches ceil(fraction * total).
        rank = max(1, -(-int(fraction * self.total * 1_000_000) // 1_000_000))
        rank = min(rank, self.total)
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                upper = BUCKET_BOUNDS_S[index]
                return upper / (_GROWTH ** 0.5)
        return self.max_s  # rank lives in the overflow bucket

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.total if self.total else 0.0

    # ------------------------------------------------------------------
    # Wire shape
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Compact JSON shape: only non-empty buckets travel.

        ``buckets`` pairs are ``[upper_bound_ms, count]``; bounds come
        from the shared table so two processes' histograms line up.
        """
        buckets = [
            [round(BUCKET_BOUNDS_S[index] * 1e3, 4), count]
            for index, count in enumerate(self.counts)
            if count
        ]
        return {
            "count": self.total,
            "overflow": self.overflow,
            "mean_ms": round(self.mean_s * 1e3, 3),
            "max_ms": round(self.max_s * 1e3, 3),
            "p50_ms": round(self.percentile(0.50) * 1e3, 3),
            "p90_ms": round(self.percentile(0.90) * 1e3, 3),
            "p99_ms": round(self.percentile(0.99) * 1e3, 3),
            "buckets": buckets,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_dict` output (bucket
        bounds are matched back to the shared table by value)."""
        histogram = cls()
        for upper_ms, count in document.get("buckets", ()):  # type: ignore[union-attr]
            # Wire bounds are rounded to 4 decimals (ms), so snap to the
            # *nearest* table bound — adjacent bounds are ~12% apart,
            # far beyond any rounding error.
            upper_s = float(upper_ms) / 1e3
            index = min(bisect_left(BUCKET_BOUNDS_S, upper_s),
                        len(BUCKET_BOUNDS_S) - 1)
            if index > 0 and (upper_s - BUCKET_BOUNDS_S[index - 1]
                              < BUCKET_BOUNDS_S[index] - upper_s):
                index -= 1
            histogram.counts[index] += int(count)
            histogram.total += int(count)
        histogram.overflow = int(document.get("overflow", 0))  # type: ignore[arg-type]
        histogram.total += histogram.overflow
        histogram.sum_s = (
            float(document.get("mean_ms", 0.0)) / 1e3 * histogram.total  # type: ignore[arg-type]
        )
        histogram.max_s = float(document.get("max_ms", 0.0)) / 1e3  # type: ignore[arg-type]
        return histogram


class _RouteStats:
    """Counters + served-latency histogram for one route.

    Plain data guarded by the owning :class:`ServerStats` lock.
    """

    __slots__ = ("requests", "ok", "rejected", "timeouts", "client_errors",
                 "server_errors", "rows_served", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.ok = 0
        self.rejected = 0
        self.timeouts = 0
        self.client_errors = 0
        self.server_errors = 0
        self.rows_served = 0
        self.latency = LatencyHistogram()

    def record(self, status: int, seconds: float, rows: int) -> None:
        self.requests += 1
        if status == 200:
            self.ok += 1
            self.rows_served += rows
            self.latency.record(seconds)
        elif status == 503:
            self.rejected += 1
        elif status == 504:
            self.timeouts += 1
        elif 400 <= status < 500:
            self.client_errors += 1
        else:
            self.server_errors += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "rows_served": self.rows_served,
            "latency": self.latency.to_dict(),
        }


class ServerStats:
    """Thread-safe per-route serving counters and latency histograms.

    The aggregate surface (``snapshot()['requests']``, ``ok``,
    ``latency_p50_ms``, …) is unchanged from the reservoir era so
    existing dashboards and tests keep working; per-route detail lives
    under ``snapshot()['routes']`` and queue/admission high-water marks
    under ``queued_peak`` / ``in_flight_peak``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routes: Dict[str, _RouteStats] = {}
        self.queued_peak = 0
        self.in_flight_peak = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, status: int, seconds: float, rows: int = 0,
               route: str = "sparql") -> None:
        with self._lock:
            stats = self._routes.get(route)
            if stats is None:
                stats = self._routes[route] = _RouteStats()
            stats.record(status, seconds, rows)

    def observe_queue(self, queued: int, in_flight: int) -> None:
        """Track admission-control high-water marks (gauge peaks)."""
        with self._lock:
            if queued > self.queued_peak:
                self.queued_peak = queued
            if in_flight > self.in_flight_peak:
                self.in_flight_peak = in_flight

    # ------------------------------------------------------------------
    # Aggregate counters (sum over routes)
    # ------------------------------------------------------------------

    def _sum(self, field: str) -> int:
        return sum(getattr(stats, field) for stats in self._routes.values())

    def totals(self) -> Dict[str, int]:
        """All aggregate counters under ONE lock acquisition.

        The race-free read path: reading the per-field properties one
        after another can observe *torn* totals (a request recorded
        between two reads makes ``ok + rejected + ... != requests``),
        which the replay harness's reconciliation would misreport as a
        lost request.  ``totals()`` and :meth:`snapshot` are internally
        consistent; the properties remain for single-field probes.
        """
        with self._lock:
            return {
                "requests": self._sum("requests"),
                "ok": self._sum("ok"),
                "rejected": self._sum("rejected"),
                "timeouts": self._sum("timeouts"),
                "client_errors": self._sum("client_errors"),
                "server_errors": self._sum("server_errors"),
                "rows_served": self._sum("rows_served"),
            }

    @property
    def requests(self) -> int:
        return self.totals()["requests"]

    @property
    def ok(self) -> int:
        return self.totals()["ok"]

    @property
    def rejected(self) -> int:
        return self.totals()["rejected"]

    @property
    def timeouts(self) -> int:
        return self.totals()["timeouts"]

    @property
    def rows_served(self) -> int:
        return self.totals()["rows_served"]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            merged = LatencyHistogram.merged(
                stats.latency for stats in self._routes.values()
            )
            return {
                "requests": self._sum("requests"),
                "ok": self._sum("ok"),
                "rejected": self._sum("rejected"),
                "timeouts": self._sum("timeouts"),
                "client_errors": self._sum("client_errors"),
                "server_errors": self._sum("server_errors"),
                "rows_served": self._sum("rows_served"),
                "latency_p50_ms": round(merged.percentile(0.50) * 1e3, 3),
                "latency_p99_ms": round(merged.percentile(0.99) * 1e3, 3),
                "queued_peak": self.queued_peak,
                "in_flight_peak": self.in_flight_peak,
                "routes": {
                    route: stats.to_dict()
                    for route, stats in sorted(self._routes.items())
                },
            }


class SlowQueryLog:
    """Bounded top-N log of the slowest traced requests.

    Thread-safe.  Every *traced* request is offered (sampling already
    thinned the stream); the log keeps the ``capacity`` entries with the
    largest wall time, so a burst of fast queries can never evict the
    slow outlier the log exists to explain.  Entries at or above
    ``threshold_s`` are flagged ``slow`` — the log still keeps the
    slowest entries below the threshold, because "nothing is slow yet"
    traces are how the threshold gets tuned.

    Entries are plain dicts (query snippet, route, wall seconds, flag,
    and the full trace in :meth:`~repro.sparql.trace.QueryTrace.to_dict`
    form) so ``GET /stats/slow`` serves them verbatim.
    """

    def __init__(self, capacity: int = 32, threshold_s: float = 0.5) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._lock = threading.Lock()
        self._entries: List[Dict[str, object]] = []
        self._offered = 0

    def offer(
        self,
        query: str,
        wall_s: float,
        trace: Dict[str, object],
        route: str = "sparql",
    ) -> bool:
        """Consider one traced request; returns True if it was kept."""
        entry: Dict[str, object] = {
            "query": query[:500],
            "route": route,
            "wall_s": round(wall_s, 6),
            "slow": wall_s >= self.threshold_s,
            "trace": trace,
        }
        with self._lock:
            self._offered += 1
            if len(self._entries) < self.capacity:
                self._entries.append(entry)
                self._entries.sort(key=lambda e: e["wall_s"], reverse=True)  # type: ignore[arg-type,return-value]
                return True
            if wall_s <= self._entries[-1]["wall_s"]:  # type: ignore[operator]
                return False
            self._entries[-1] = entry
            self._entries.sort(key=lambda e: e["wall_s"], reverse=True)  # type: ignore[arg-type,return-value]
            return True

    def snapshot(self) -> Dict[str, object]:
        """Wire form: entries sorted slowest-first plus summary counters."""
        with self._lock:
            entries = [dict(entry) for entry in self._entries]
            return {
                "capacity": self.capacity,
                "threshold_s": self.threshold_s,
                "offered": self._offered,
                "slow_count": sum(1 for entry in entries if entry["slow"]),
                "entries": entries,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._offered = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class StatsTimeSeries:
    """A bounded, append-only series of stats snapshots.

    Sampling is caller-driven: the WSGI app appends one point per
    ``GET /stats/series``, so the load driver's tick is the clock.
    Bounded (drop-oldest) so an unattended server cannot grow without
    limit under a polling monitor.
    """

    def __init__(self, max_points: int = 4096,
                 clock=time.time) -> None:
        self._lock = threading.Lock()
        self._points: List[Dict[str, object]] = []
        self.max_points = max_points
        self._clock = clock
        self._started = clock()

    def sample(self, body: Dict[str, object]) -> List[Dict[str, object]]:
        """Append one point built from a ``/stats`` body; returns the
        whole series (a copy)."""
        now = self._clock()
        point = dict(body)
        point["t"] = round(now, 6)
        point["elapsed_s"] = round(now - self._started, 6)
        with self._lock:
            self._points.append(point)
            if len(self._points) > self.max_points:
                del self._points[: len(self._points) - self.max_points]
            point["tick"] = len(self._points) - 1
            return list(self._points)

    def points(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._points)

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)


def route_deltas(before: Dict[str, object], after: Dict[str, object],
                 fields: Sequence[str] = ("requests", "ok", "rejected",
                                          "timeouts", "client_errors",
                                          "server_errors", "rows_served"),
                 routes: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, int]]:
    """Per-route counter deltas between two ``/stats`` bodies.

    The reconciliation primitive: a load driver snapshots ``/stats``
    before and after a run and compares these deltas against its own
    ledger.  Routes absent from a snapshot contribute zero.
    """
    before_routes = before.get("routes", {}) or {}
    after_routes = after.get("routes", {}) or {}
    names = routes if routes is not None else sorted(
        set(before_routes) | set(after_routes)  # type: ignore[arg-type]
    )
    deltas: Dict[str, Dict[str, int]] = {}
    for name in names:
        b = before_routes.get(name, {})  # type: ignore[union-attr]
        a = after_routes.get(name, {})  # type: ignore[union-attr]
        deltas[name] = {
            field: int(a.get(field, 0)) - int(b.get(field, 0))
            for field in fields
        }
    return deltas


#: Counter fields summed across workers when merging ``/stats`` bodies.
_MERGE_SUM_FIELDS = ("requests", "ok", "rejected", "timeouts",
                     "client_errors", "server_errors", "rows_served",
                     "in_flight", "queued", "sessions", "session_activity")
_MERGE_MAX_FIELDS = ("queued_peak", "in_flight_peak")

#: Suggestion-cache counters summed across workers; the per-tier hit
#: rates are *recomputed* from the summed counters (averaging per-worker
#: rates would weight an idle worker like a busy one), and the index
#: size gauges take the max (workers serve the same on-disk index).
_CACHE_SUM_FIELDS = ("lookups", "tree_hits", "bin_hits", "index_hits",
                     "misses", "served")
_CACHE_MAX_FIELDS = ("index_surfaces", "index_bytes", "index_fts")


def _merge_cache_blocks(blocks: List[Dict[str, object]]) -> Dict[str, object]:
    merged: Dict[str, object] = {field: 0 for field in _CACHE_SUM_FIELDS}
    for field in _CACHE_MAX_FIELDS:
        merged[field] = 0
    for block in blocks:
        for field in _CACHE_SUM_FIELDS:
            merged[field] += int(block.get(field, 0))  # type: ignore[arg-type,operator]
        for field in _CACHE_MAX_FIELDS:
            merged[field] = max(merged[field],  # type: ignore[type-var]
                                int(block.get(field, 0)))  # type: ignore[arg-type]
    lookups = int(merged["lookups"])  # type: ignore[arg-type]
    for tier in ("tree", "bin", "index"):
        hits = int(merged[f"{tier}_hits"])  # type: ignore[arg-type]
        merged[f"{tier}_hit_rate"] = hits / lookups if lookups else 0.0
    return merged


def merge_stats_bodies(bodies: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """One coordinator-view ``/stats`` body from per-worker bodies.

    Counters and gauges sum, high-water marks take the max, and
    per-route latency histograms merge **bucket-wise** through
    :meth:`LatencyHistogram.from_dict` / :meth:`~LatencyHistogram.merge`
    — so the merged view's percentiles are computed over the union of
    all workers' samples, not averaged per worker.  The output has the
    same shape :func:`route_deltas` and the replay reconciliation
    consume, which is what makes client-vs-coordinator reconciliation
    possible in multi-worker mode.
    """
    merged: Dict[str, object] = {field: 0 for field in _MERGE_SUM_FIELDS}
    for field in _MERGE_MAX_FIELDS:
        merged[field] = 0
    route_counts: Dict[str, Dict[str, int]] = {}
    route_latency: Dict[str, LatencyHistogram] = {}
    cache_blocks: List[Dict[str, object]] = []
    for body in bodies:
        cache = body.get("cache")
        if isinstance(cache, dict):
            cache_blocks.append(cache)
        for field in _MERGE_SUM_FIELDS:
            merged[field] += int(body.get(field, 0))  # type: ignore[arg-type,operator]
        for field in _MERGE_MAX_FIELDS:
            merged[field] = max(merged[field],  # type: ignore[type-var]
                                int(body.get(field, 0)))  # type: ignore[arg-type]
        for route, stats in (body.get("routes", {}) or {}).items():  # type: ignore[union-attr]
            counts = route_counts.setdefault(
                route, {field: 0 for field in _MERGE_SUM_FIELDS[:7]})
            for field in _MERGE_SUM_FIELDS[:7]:
                counts[field] += int(stats.get(field, 0))
            histogram = route_latency.setdefault(route, LatencyHistogram())
            latency = stats.get("latency")
            if latency:
                histogram.merge(LatencyHistogram.from_dict(latency))
    overall = LatencyHistogram.merged(route_latency.values())
    merged["latency_p50_ms"] = round(overall.percentile(0.50) * 1e3, 3)
    merged["latency_p99_ms"] = round(overall.percentile(0.99) * 1e3, 3)
    merged["routes"] = {
        route: {**route_counts[route],
                "latency": route_latency[route].to_dict()}
        for route in sorted(route_counts)
    }
    if cache_blocks:
        merged["cache"] = _merge_cache_blocks(cache_blocks)
    return merged
