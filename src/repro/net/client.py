"""HTTP client endpoint speaking the SPARQL 1.1 Protocol.

:class:`HttpSparqlEndpoint` presents the exact query surface of the
in-process :class:`~repro.endpoint.endpoint.SparqlEndpoint` —
``select``/``ask`` accepting text or a parsed AST, a ``log`` of
:class:`~repro.endpoint.endpoint.QueryLogEntry`, ``query_count`` /
``timeout_count`` / ``reset_log`` — but executes every query against a
remote endpoint over HTTP.  Because the surface matches, a
:class:`~repro.federation.fedx.FederatedQueryProcessor` built over
``HttpSparqlEndpoint`` instances federates over live network endpoints
with no code changes: source-selection ASK probes, exclusive groups and
bound joins all go over the wire.

Failure mapping keeps the endpoint error hierarchy intact:

* HTTP **503** (overload/admission control) → retried with capped
  exponential backoff + jitter, then :class:`QueryRejected`;
* HTTP **504** (endpoint killed the query) → :class:`EndpointTimeout`
  immediately — a query that exhausts the remote budget once will do it
  again, so retrying only adds load;
* HTTP **400** → :class:`~repro.sparql.errors.SparqlError`;
* client-side read timeout → :class:`EndpointTimeout`, not retried (the
  query would just burn the same budget again);
* connection failures → retried, then :class:`ConnectionFailed` (an
  :class:`EndpointError` subclass).  The distinction matters for load
  harnesses: a ``ConnectionFailed`` request never reached the server,
  so it must be excluded when reconciling client ledgers against the
  server's ``/stats`` counters; every other failure *was* counted
  server-side.

Results travel as SPARQL Results JSON and are parsed back into the
library's result containers, so rows coming off the wire are
indistinguishable from rows produced in-process.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import List, Optional, Union

from ..endpoint.endpoint import (
    EndpointError,
    EndpointTimeout,
    QueryLogEntry,
    QueryRejected,
)
from ..sparql.ast_nodes import Query
from ..sparql.errors import SparqlError
from ..sparql.results import AskResult, SelectResult
from ..sparql.serializer import serialize_query
from ..sparql.trace import PARENT_SPAN_HEADER, TRACE_ID_HEADER
from .formats import MIME_JSON, FormatError, parse_json
from .suggest import (
    MIME_JSON_BODY,
    RemoteCompletionResult,
    RemoteOutcome,
    parse_completion,
    parse_outcome,
)
from .wsgi import MIME_FORM, WORKER_HEADER

__all__ = [
    "ConnectionFailed",
    "HttpSparqlEndpoint",
    "HttpSapphireClient",
    "fetch_slow_log",
    "fetch_stats",
    "fetch_stats_series",
    "server_root",
]


class ConnectionFailed(EndpointError):
    """The request never reached the server (refused/reset/unroutable).

    Distinct from other :class:`EndpointError`\\ s so reconciliation can
    subtract these attempts from the client ledger: the server has no
    corresponding ``/stats`` increment.
    """


class HttpSparqlEndpoint:
    """A remote SPARQL endpoint reached over the SPARQL 1.1 Protocol.

    Drop-in replacement for :class:`SparqlEndpoint` wherever only the
    query surface is used (the federation, initialization probes).

    ``max_retries`` bounds *re*-tries after the first attempt; backoff
    doubles from ``backoff_s`` up to ``backoff_cap_s`` with full jitter.
    Pass a seeded ``random.Random`` as ``rng`` for deterministic tests.
    """

    def __init__(
        self,
        url: str,
        name: Optional[str] = None,
        *,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.url = url
        self.name = name or urllib.parse.urlsplit(url).netloc or url
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        # Seeded by default (stable per endpoint name): backoff jitter
        # is the only stochastic client path, and a replay must be
        # reproducible end to end.  Pass your own rng to decorrelate
        # concurrent clients sharing a name.
        self._rng = rng if rng is not None else random.Random(
            f"endpoint:{self.name}")
        self.log: List[QueryLogEntry] = []
        #: Pre-fork worker id (``X-Repro-Worker``) of the most recent
        #: response, or None against single-process servers.  Best-effort
        #: last-write-wins under concurrency — the replay harness reads
        #: it per-request from its single-threaded session clients.
        self.last_worker: Optional[str] = None
        self._lock = threading.Lock()
        # Distributed-trace context (docs/tracing.md): when set by
        # Tracer.remote_call, outgoing queries carry the trace id and
        # the calling span's id as headers so the remote server records
        # its spans under the same trace.  Thread-local because one
        # endpoint object may serve concurrent federated queries.
        self._trace_context = threading.local()

    # ------------------------------------------------------------------
    # Endpoint query surface (mirrors SparqlEndpoint)
    # ------------------------------------------------------------------

    def select(self, query: Union[str, Query]) -> SelectResult:
        """Run a SELECT query remotely; raises on timeout/rejection."""
        result = self._run(query)
        if not isinstance(result, SelectResult):
            raise SparqlError("expected a SELECT query")
        return result

    def ask(self, query: Union[str, Query]) -> AskResult:
        """Run an ASK query remotely; raises on timeout/rejection."""
        result = self._run(query)
        if not isinstance(result, AskResult):
            raise SparqlError("expected an ASK query")
        return result

    def set_trace_context(self, trace_id: Optional[str],
                          parent_span_id: Optional[str]) -> None:
        """Install (or clear, with ``None``s) the distributed-trace
        context stamped onto outgoing requests.

        Called by :meth:`~repro.sparql.trace.Tracer.remote_call` around
        each remote round so the server side continues the same trace —
        its spans come back stitchable under the calling span.
        """
        if trace_id is None:
            self._trace_context.value = None
        else:
            self._trace_context.value = (trace_id, parent_span_id)

    def _trace_headers(self) -> dict:
        context = getattr(self._trace_context, "value", None)
        if context is None:
            return {}
        trace_id, parent_span_id = context
        headers = {TRACE_ID_HEADER: trace_id}
        if parent_span_id:
            headers[PARENT_SPAN_HEADER] = parent_span_id
        return headers

    def analyze(self, query: Union[str, Query]) -> str:
        """Remote EXPLAIN ANALYZE: execute and return the rendered
        operator trace tree (``analyze=true`` over the protocol).

        Unlike :meth:`explain` this *runs* the query on the server, so
        it passes through remote admission control and deadlines; like
        ``explain`` it is not recorded in the client query log.
        """
        text = query if isinstance(query, str) else serialize_query(query)
        body = urllib.parse.urlencode(
            {"query": text, "analyze": "true"}).encode("utf-8")
        headers = {
            "Content-Type": MIME_FORM,
            "Accept": "text/plain",
            "User-Agent": "sapphire-repro-client/1.0",
        }
        headers.update(self._trace_headers())
        request = urllib.request.Request(
            self.url, data=body, headers=headers, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            mapped = self._map_http_error(exc)
            if isinstance(mapped, _Retryable):
                mapped = mapped.error
            raise mapped from None
        except TimeoutError as exc:
            raise EndpointTimeout(
                f"{self.name}: no response within {self.timeout_s}s: {exc}"
            ) from None
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, TimeoutError):
                raise EndpointTimeout(
                    f"{self.name}: no response within {self.timeout_s}s: "
                    f"{exc.reason}") from None
            raise ConnectionFailed(f"{self.name}: connection failed: {exc}") from None
        except ConnectionError as exc:
            raise ConnectionFailed(f"{self.name}: connection failed: {exc}") from None

    def explain(self, query: Union[str, Query]) -> str:
        """Remote EXPLAIN: the server's plan dump for ``query``.

        Mirrors :meth:`SparqlEndpoint.explain` over the wire via the
        protocol's ``explain=true`` form field.  Free and unlogged on
        both sides (planning is estimation-only), so an EXPLAIN never
        skews the query log a benchmark is counting.
        """
        text = query if isinstance(query, str) else serialize_query(query)
        body = urllib.parse.urlencode({"query": text, "explain": "true"}).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={
                "Content-Type": MIME_FORM,
                "Accept": "text/plain",
                "User-Agent": "sapphire-repro-client/1.0",
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            mapped = self._map_http_error(exc)
            if isinstance(mapped, _Retryable):
                mapped = mapped.error  # explain is cheap; don't retry it
            raise mapped from None
        except urllib.error.URLError as exc:
            raise ConnectionFailed(f"{self.name}: connection failed: {exc}") from None
        except ConnectionError as exc:
            raise ConnectionFailed(f"{self.name}: connection failed: {exc}") from None

    @property
    def query_count(self) -> int:
        return len(self.log)

    @property
    def timeout_count(self) -> int:
        return sum(1 for entry in self.log if entry.outcome == "timeout")

    def reset_log(self) -> None:
        with self._lock:
            self.log.clear()

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    def _run(self, query: Union[str, Query]) -> Union[SelectResult, AskResult]:
        text = query if isinstance(query, str) else serialize_query(query)
        started = time.perf_counter()
        attempt = 0
        while True:
            try:
                result = self._post(text)
            except _Retryable as failure:
                if attempt >= self.max_retries:
                    self._record(text, failure.outcome, started)
                    raise failure.error from None
                self._sleep(attempt)
                attempt += 1
                continue
            except EndpointTimeout:
                self._record(text, "timeout", started)
                raise
            except (EndpointError, SparqlError):
                self._record(text, "error", started)
                raise
            rows = len(result.rows) if isinstance(result, SelectResult) else 0
            truncated = getattr(result, "truncated", False)
            self._record(text, "ok", started, rows=rows, truncated=truncated)
            return result

    def _post(self, text: str) -> Union[SelectResult, AskResult]:
        body = urllib.parse.urlencode({"query": text}).encode("utf-8")
        headers = {
            "Content-Type": MIME_FORM,
            "Accept": MIME_JSON,
            "User-Agent": "sapphire-repro-client/1.0",
        }
        headers.update(self._trace_headers())
        request = urllib.request.Request(
            self.url,
            data=body,
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                payload = response.read()
                truncated = response.headers.get("X-Result-Truncated") == "true"
                self.last_worker = response.headers.get(WORKER_HEADER)
        except urllib.error.HTTPError as exc:
            self.last_worker = exc.headers.get(WORKER_HEADER)
            raise self._map_http_error(exc) from None
        except TimeoutError as exc:
            # The query outlived our read timeout; retrying would re-run
            # it and burn the same budget again — same policy as a 504.
            raise EndpointTimeout(
                f"{self.name}: no response within {self.timeout_s}s: {exc}"
            ) from None
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, TimeoutError):
                raise EndpointTimeout(
                    f"{self.name}: no response within {self.timeout_s}s: {exc.reason}"
                ) from None
            raise _Retryable(
                ConnectionFailed(f"{self.name}: connection failed: {exc}"),
                outcome="error",
            ) from None
        except ConnectionError as exc:
            raise _Retryable(
                ConnectionFailed(f"{self.name}: connection failed: {exc}"),
                outcome="error",
            ) from None
        try:
            result = parse_json(payload)
        except FormatError as exc:
            raise EndpointError(f"{self.name}: unparseable response: {exc}") from None
        if truncated and isinstance(result, SelectResult):
            result.truncated = True
        return result

    def _map_http_error(self, exc: urllib.error.HTTPError) -> Exception:
        return _map_http_error(self.name, exc)

    def _sleep(self, attempt: int) -> None:
        _jitter_sleep(self._rng, attempt, self.backoff_s, self.backoff_cap_s)

    def _record(
        self,
        text: str,
        outcome: str,
        started: float,
        rows: int = 0,
        truncated: bool = False,
    ) -> None:
        elapsed = time.perf_counter() - started
        with self._lock:
            self.log.append(
                QueryLogEntry(
                    query=text,
                    outcome=outcome,
                    cost=0,  # remote cost is invisible to the client
                    simulated_seconds=elapsed,
                    rows=rows,
                    truncated=truncated,
                )
            )


class HttpSapphireClient:
    """Drive a *remote* Sapphire's Predictive User Model over HTTP.

    Talks to the ``/complete`` and ``/suggest`` routes a
    :class:`~repro.net.wsgi.SparqlWsgiApp` exposes when its backend is a
    :class:`~repro.core.sapphire.SapphireServer`.  The call surface
    mirrors the in-process server — ``complete(text, k)`` and
    ``suggest(query)`` — so a UI (or another SapphireServer) can swap a
    local PUM for a network one without code changes.

    ``base_url`` may be the server root or its ``/sparql`` endpoint URL;
    the suggestion routes are derived from it.  Failure mapping follows
    :class:`HttpSparqlEndpoint`: 503 → :class:`QueryRejected` after
    capped jittered retries, 504 → :class:`EndpointTimeout`, 400 →
    :class:`~repro.sparql.errors.SparqlError`.
    """

    def __init__(
        self,
        base_url: str,
        *,
        session: Optional[str] = None,
        timeout_s: float = 30.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        split = urllib.parse.urlsplit(base_url)
        path = split.path
        if path.endswith("/sparql"):
            path = path[: -len("/sparql")]
        self.root = urllib.parse.urlunsplit(
            (split.scheme, split.netloc, path.rstrip("/"), "", "")
        )
        self.name = split.netloc or base_url
        self.session = session
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        # Same contract as HttpSparqlEndpoint: jitter is seeded, never
        # drawn from OS entropy, so replays reproduce byte-for-byte.
        self._rng = rng if rng is not None else random.Random(
            f"sapphire:{self.name}:{session or ''}")
        #: Worker id of the most recent response (see HttpSparqlEndpoint).
        self.last_worker: Optional[str] = None

    # ------------------------------------------------------------------
    # PUM surface (mirrors SapphireServer)
    # ------------------------------------------------------------------

    def complete(self, text: str, k: Optional[int] = None) -> RemoteCompletionResult:
        """QCM auto-completion from the remote cache."""
        return parse_completion(self.complete_raw(text, k))

    def complete_raw(self, text: str, k: Optional[int] = None) -> bytes:
        """The exact ``/complete`` response bytes (the parity surface:
        byte-identical to the in-process canonical encoding)."""
        body: dict = {"text": text}
        if k is not None:
            body["k"] = k
        return self._post("/complete", body)

    def suggest(self, query: str, suggest: bool = True) -> RemoteOutcome:
        """Run ``query`` remotely and collect the QSM's suggestions
        (answers and prefetched suggestion answers included)."""
        return parse_outcome(self._post("/suggest", {"query": query, "suggest": suggest}))

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _post(self, route: str, body: dict) -> bytes:
        if self.session is not None:
            body = dict(body, session=self.session)
        payload = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.root + route,
            data=payload,
            headers={
                "Content-Type": MIME_JSON_BODY,
                "Accept": MIME_JSON_BODY,
                "User-Agent": "sapphire-repro-client/1.0",
            },
            method="POST",
        )
        attempt = 0
        while True:
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                    self.last_worker = response.headers.get(WORKER_HEADER)
                    return response.read()
            except urllib.error.HTTPError as exc:
                self.last_worker = exc.headers.get(WORKER_HEADER)
                mapped = _map_http_error(self.name, exc)
                if isinstance(mapped, _Retryable) and attempt < self.max_retries:
                    self._sleep(attempt)
                    attempt += 1
                    continue
                if isinstance(mapped, _Retryable):
                    mapped = mapped.error
                raise mapped from None
            except TimeoutError as exc:
                raise EndpointTimeout(
                    f"{self.name}: no response within {self.timeout_s}s: {exc}"
                ) from None
            except urllib.error.URLError as exc:
                if isinstance(exc.reason, TimeoutError):
                    raise EndpointTimeout(
                        f"{self.name}: no response within {self.timeout_s}s: "
                        f"{exc.reason}"
                    ) from None
                if attempt < self.max_retries:
                    self._sleep(attempt)
                    attempt += 1
                    continue
                raise ConnectionFailed(f"{self.name}: connection failed: {exc}") from None
            except ConnectionError as exc:
                if attempt < self.max_retries:
                    self._sleep(attempt)
                    attempt += 1
                    continue
                raise ConnectionFailed(f"{self.name}: connection failed: {exc}") from None

    def _sleep(self, attempt: int) -> None:
        _jitter_sleep(self._rng, attempt, self.backoff_s, self.backoff_cap_s)


def _fetch_json(url: str, timeout_s: float) -> dict:
    request = urllib.request.Request(
        url,
        headers={
            "Accept": "application/json",
            "User-Agent": "sapphire-repro-client/1.0",
        },
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raise EndpointError(f"{url}: HTTP {exc.code}: {_error_detail(exc)}") from None
    except (urllib.error.URLError, ConnectionError) as exc:
        raise ConnectionFailed(f"{url}: connection failed: {exc}") from None


def server_root(url: str) -> str:
    """The server root for a base or ``/sparql`` endpoint URL."""
    split = urllib.parse.urlsplit(url)
    path = split.path
    if path.endswith("/sparql"):
        path = path[: -len("/sparql")]
    return urllib.parse.urlunsplit(
        (split.scheme, split.netloc, path.rstrip("/"), "", "")
    )


def fetch_stats(url: str, timeout_s: float = 10.0) -> dict:
    """GET ``/stats`` from a server root (or ``/sparql``) URL."""
    return _fetch_json(server_root(url) + "/stats", timeout_s)


def fetch_slow_log(url: str, timeout_s: float = 10.0) -> dict:
    """GET ``/stats/slow`` — the server's slow-query log with full
    traces, slowest first (docs/tracing.md)."""
    return _fetch_json(server_root(url) + "/stats/slow", timeout_s)


def fetch_stats_series(url: str, timeout_s: float = 10.0) -> dict:
    """GET ``/stats/series`` — appends one sample point server-side and
    returns ``{"points": [...], "max_points": N}``; the caller's polling
    cadence is the series' sampling clock."""
    return _fetch_json(server_root(url) + "/stats/series", timeout_s)


def _jitter_sleep(rng: random.Random, attempt: int,
                  base_s: float, cap_s: float) -> None:
    """Full-jitter exponential backoff, capped — the one retry pacing
    policy both wire clients share."""
    ceiling = min(cap_s, base_s * (2 ** attempt))
    time.sleep(rng.uniform(0, ceiling))


def _map_http_error(name: str, exc: urllib.error.HTTPError) -> Exception:
    """Shared status → endpoint-error mapping for the wire clients."""
    detail = _error_detail(exc)
    if exc.code == 503:
        return _Retryable(
            QueryRejected(f"{name}: rejected (503): {detail}"),
            outcome="rejected",
        )
    if exc.code == 504:
        return EndpointTimeout(f"{name}: remote timeout (504): {detail}")
    if exc.code == 400:
        return SparqlError(f"{name}: bad query (400): {detail}")
    return EndpointError(f"{name}: HTTP {exc.code}: {detail}")


class _Retryable(Exception):
    """Internal: a failure worth retrying, wrapping the terminal error."""

    def __init__(self, error: Exception, outcome: str) -> None:
        super().__init__(str(error))
        self.error = error
        self.outcome = outcome


def _error_detail(exc: urllib.error.HTTPError) -> str:
    """Best-effort extraction of the server's JSON error message."""
    try:
        document = json.loads(exc.read().decode("utf-8", "replace"))
        return str(document["error"]["message"])
    except Exception:  # noqa: BLE001 - any malformed body falls through
        return exc.reason if isinstance(exc.reason, str) else str(exc.reason)
