"""Threaded stdlib HTTP server for the SPARQL 1.1 Protocol.

:class:`SparqlHttpServer` binds a :class:`~repro.net.wsgi.SparqlWsgiApp`
to a real socket using ``http.server.ThreadingHTTPServer`` — one thread
per connection, admission control inside the app bounding actual query
concurrency.  It is the piece that turns any in-process
:class:`~repro.endpoint.endpoint.SparqlEndpoint` (or a whole federation)
into something DBpedia-shaped: reachable over the network, guarded by
queue limits and deadlines, and observable through ``/health`` and
``/stats``.

Typical use::

    endpoint = SparqlEndpoint(store, EndpointConfig(timeout_s=1.0))
    with SparqlHttpServer(endpoint, port=0) as server:   # ephemeral port
        client = HttpSparqlEndpoint(server.url)
        rows = client.select("SELECT * WHERE { ?s ?p ?o } LIMIT 5").rows

``port=0`` asks the kernel for an ephemeral port (read it back from
``server.port``) so tests and benchmarks never collide.  For the
blocking form used by ``repro serve``, call :meth:`serve_forever`.
"""

from __future__ import annotations

import io
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .wsgi import SparqlWsgiApp

__all__ = ["SparqlHttpServer"]

#: Most bytes we will read-and-discard to deliver a 413 to a client that
#: overshot ``max_query_bytes``; claims beyond this get the socket closed.
_DRAIN_CAP = 64 * 1024 * 1024


class _WsgiRequestHandler(BaseHTTPRequestHandler):
    """Adapts one HTTP request into a WSGI call on the server's app."""

    protocol_version = "HTTP/1.1"
    server_version = "SapphireSparql/1.0"

    # The app is attached to the server object by SparqlHttpServer.
    def _dispatch(self) -> None:
        app: SparqlWsgiApp = self.server.wsgi_app  # type: ignore[attr-defined]
        path, _, query_string = self.path.partition("?")
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        # Never buffer an oversized body: pass the claimed length through
        # unread and let the app's max_query_bytes check answer 413 —
        # memory stays bounded no matter what Content-Length claims.
        if length <= app.max_query_bytes:
            body = self.rfile.read(length) if length else b""
        else:
            # Drain-and-discard in bounded chunks: if the client is still
            # blocked sending when we respond, the close RSTs the socket
            # and the 413 never arrives (the client would see a broken
            # pipe and retry the whole upload).  Truly absurd claims are
            # cut off at _DRAIN_CAP and the connection dropped instead.
            remaining = min(length, _DRAIN_CAP)
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            body = b""
            # The body may be only partially drained (_DRAIN_CAP); the
            # connection cannot carry another request.
            self.close_connection = True
        environ = {
            "REQUEST_METHOD": self.command,
            "PATH_INFO": path,
            "QUERY_STRING": query_string,
            "CONTENT_TYPE": self.headers.get("Content-Type", ""),
            "CONTENT_LENGTH": str(length),
            "HTTP_ACCEPT": self.headers.get("Accept", ""),
            "wsgi.input": io.BytesIO(body),
        }
        # Distributed-trace propagation (docs/tracing.md): forward the
        # trace headers so an upstream federated query's trace id
        # reaches the app and the server's spans stitch into it.
        trace_id = self.headers.get("X-Repro-Trace-Id")
        if trace_id:
            environ["HTTP_X_REPRO_TRACE_ID"] = trace_id
        parent_span = self.headers.get("X-Repro-Parent-Span")
        if parent_span:
            environ["HTTP_X_REPRO_PARENT_SPAN"] = parent_span

        responded = False

        def start_response(status_line: str, headers) -> None:
            nonlocal responded
            responded = True
            code, _, _ = status_line.partition(" ")
            self.send_response_only(int(code))
            for name, value in headers:
                self.send_header(name, value)

        chunks = app(environ, start_response)
        payload = b"".join(chunks)
        if not responded:  # pragma: no cover - app always responds
            self.send_response_only(500)
            payload = b""
            self.close_connection = True
        # Every response carries Content-Length, so HTTP/1.1 keep-alive
        # works on the normal path (the federation issues many small
        # requests; per-query TCP setup would dominate).
        self.end_headers()
        if payload:
            self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Loopback benchmarks churn through many short-lived client sockets;
    # without this, TIME_WAIT from a previous run can block the bind.
    allow_reuse_address = True


class SparqlHttpServer:
    """A SPARQL 1.1 Protocol endpoint served over HTTP.

    Parameters mirror :class:`~repro.net.wsgi.SparqlWsgiApp`:
    ``max_workers`` bounds concurrent query execution, ``queue_limit``
    bounds requests waiting for a worker (beyond it: 503), and
    ``deadline_s`` (default: the wrapped endpoint's
    ``EndpointConfig.timeout_s``) caps queue wait.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_workers: int = 8,
        queue_limit: int = 16,
        deadline_s: Optional[float] = None,
        verbose: bool = False,
        trace_sample_rate: float = 0.0,
        slow_query_threshold_s: float = 0.5,
        slow_log_size: int = 32,
    ) -> None:
        self.app = SparqlWsgiApp(
            backend,
            max_workers=max_workers,
            queue_limit=queue_limit,
            deadline_s=deadline_s,
            trace_sample_rate=trace_sample_rate,
            slow_query_threshold_s=slow_query_threshold_s,
            slow_log_size=slow_log_size,
        )
        self._httpd = _Server((host, port), _WsgiRequestHandler)
        self._httpd.wsgi_app = self.app  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The query endpoint URL clients should talk to."""
        return f"http://{self.host}:{self.port}/sparql"

    @property
    def stats(self):
        """Live serving counters (same data ``/stats`` returns)."""
        return self.app.stats

    @property
    def series(self):
        """The bounded stats time series behind ``/stats/series``."""
        return self.app.series

    @property
    def slow_log(self):
        """The bounded slow-query log behind ``/stats/slow``."""
        return self.app.slow_log

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SparqlHttpServer":
        """Serve in a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server is already running")
        if self._closed:
            raise RuntimeError(
                "server socket is closed (stop() was called); "
                "build a new SparqlHttpServer to serve again")
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"sparql-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        if self._closed:
            raise RuntimeError(
                "server socket is closed (stop() was called); "
                "build a new SparqlHttpServer to serve again")
        self._serving = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._closed = True
        if self._serving:
            # shutdown() blocks on the serve_forever loop acknowledging;
            # calling it on a server that never served would hang.
            self._httpd.shutdown()
            self._serving = False
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SparqlHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
