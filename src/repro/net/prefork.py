"""Pre-fork worker pool: K processes serving one SPARQL endpoint port.

One Python process behind :class:`~repro.net.server.SparqlHttpServer`
caps throughput at a single core no matter how many threads it runs —
query execution is pure Python, so the GIL serializes it.
:class:`PreforkServer` is the scale-out answer: K **worker processes**
(spawn-compatible, so it works where ``fork`` is unsafe), each running
its own :class:`~repro.net.wsgi.SparqlWsgiApp` over its own read-only
store replica, all accepting from ONE address.

Socket sharing
--------------
Two strategies, picked automatically:

* ``SO_REUSEPORT`` (Linux/BSD): every worker binds its *own* listening
  socket to the shared address; the kernel load-balances incoming
  connections across them.  The parent binds first (without listening)
  only to resolve an ephemeral port, then closes its socket once the
  workers are up.
* FD passing (fallback, or ``force_fd_passing=True``): the parent binds
  and listens, then ships the listening socket to each worker over its
  control pipe with :func:`multiprocessing.reduction.send_handle`; the
  workers ``accept()`` on the shared file description.

Replica discipline
------------------
Workers never share a store object.  For SQLite-backed datasets the
parent materializes the sharded database files once
(:func:`prepare_snapshots`) and every worker opens them **read-only**
(``mode=ro`` over WAL — see :class:`~repro.store.sqlite_backend.SQLiteBackend`),
so N processes read one snapshot with zero coordination.  Memory-backed
specs rebuild the deterministic synthetic dataset per worker instead.

Control plane
-------------
Each worker keeps a :class:`multiprocessing.Pipe` to the parent: the
parent requests stats snapshots (merged bucket-wise into one
coordinator ``/stats`` view by
:func:`~repro.net.metrics.merge_stats_bodies`), pings for liveness, and
signals graceful drain.  A monitor thread respawns workers that die.
The merged view is also served over HTTP on the coordinator's own port
(``/stats``, ``/stats/series``, ``/health``) so the replay harness
reconciles against cluster totals, not one worker's share.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional, Tuple

from http.server import ThreadingHTTPServer

from .metrics import StatsTimeSeries, merge_stats_bodies
from .server import _WsgiRequestHandler
from .wsgi import SparqlWsgiApp

__all__ = ["PreforkServer", "build_backend_from_spec", "prepare_snapshots"]

#: True where the kernel can fan one port out across worker sockets.
HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


# ----------------------------------------------------------------------
# Worker-side backend construction (module-level: spawn must pickle it)
# ----------------------------------------------------------------------


def build_backend_from_spec(spec: Dict[str, object]):
    """Build one worker's serving backend from a picklable spec dict.

    Keys: ``scale``/``seed`` (synthetic dataset), ``timeout_s``,
    ``execution``, ``tree_capacity``, ``sapphire`` (serve the suggestion
    API too), ``n_shards``, and optionally ``snapshot_base`` — when set,
    the worker opens the sharded SQLite snapshot files at that base path
    **read-only** instead of rebuilding the dataset in memory.
    """
    from ..core.config import SapphireConfig
    from ..core.sapphire import SapphireServer
    from ..data import DatasetConfig, build_dataset
    from ..endpoint.endpoint import EndpointConfig, SparqlEndpoint
    from ..store import TripleStore, create_sharded_backend

    scale = str(spec.get("scale", "tiny"))
    seed = int(spec.get("seed", 42))  # type: ignore[arg-type]
    n_shards = int(spec.get("n_shards", 1))  # type: ignore[arg-type]
    snapshot_base = spec.get("snapshot_base")

    if snapshot_base is not None:
        backend = create_sharded_backend(
            n_shards, "sqlite", str(snapshot_base), read_only=True)
        store = TripleStore(backend=backend)
    else:
        factory = getattr(DatasetConfig, scale)
        dataset = build_dataset(factory(seed=seed))
        if n_shards > 1:
            store = TripleStore(
                backend=create_sharded_backend(n_shards, "memory"))
            store.add_all(dataset.store.triples())
        else:
            store = dataset.store

    endpoint = SparqlEndpoint(
        store,
        EndpointConfig(timeout_s=float(spec.get("timeout_s", 2.0))),  # type: ignore[arg-type]
        name=f"dbpedia-{scale}",
        execution=str(spec.get("execution", "auto")),
    )
    if spec.get("sapphire"):
        config = SapphireConfig(
            suffix_tree_capacity=int(spec.get("tree_capacity", 500)),  # type: ignore[arg-type]
            execution=str(spec.get("execution", "auto")),
        )
        server = SapphireServer(config)
        cache_snapshot = spec.get("cache_snapshot")
        if cache_snapshot is not None:
            # Instant replica boot: open the parent's persisted cache
            # (v3 file with the on-disk term index) read-only instead of
            # re-running Section 5 initialization in every worker.
            from ..core.persistence import load_cache

            server.cache = load_cache(
                str(cache_snapshot), config, read_only=True)
            server.attach_endpoint(endpoint)
        else:
            server.register_endpoint(endpoint)
        return server
    return endpoint


def prepare_snapshots(spec: Dict[str, object], base_path: str) -> Dict[str, object]:
    """Materialize the spec's dataset as sharded SQLite snapshot files.

    Builds the synthetic dataset once in this process, writes it into
    ``n_shards`` WAL database files at ``shard_path(base_path, i)``, and
    closes them (the close checkpoints the WAL, leaving self-contained
    files).  Returns a new spec with ``snapshot_base`` set — hand that
    to the workers and each opens the files read-only.
    """
    from ..data import DatasetConfig, build_dataset
    from ..store import TripleStore, create_sharded_backend

    factory = getattr(DatasetConfig, str(spec.get("scale", "tiny")))
    dataset = build_dataset(factory(seed=int(spec.get("seed", 42))))  # type: ignore[arg-type]
    n_shards = int(spec.get("n_shards", 1))  # type: ignore[arg-type]
    backend = create_sharded_backend(n_shards, "sqlite", base_path)
    store = TripleStore(backend=backend)
    store.add_all(dataset.store.triples())
    backend.close()
    out = {**spec, "snapshot_base": base_path}
    if spec.get("sapphire"):
        # Run Section 5 initialization ONCE here and persist the cache
        # (v3: reified triples + on-disk term index); each worker then
        # boots a read-only tiered replica in seconds, no rebuild.
        from ..core.config import SapphireConfig
        from ..core.persistence import save_cache
        from ..core.sapphire import SapphireServer
        from ..endpoint.endpoint import EndpointConfig, SparqlEndpoint

        config = SapphireConfig(
            suffix_tree_capacity=int(spec.get("tree_capacity", 500)),  # type: ignore[arg-type]
            execution=str(spec.get("execution", "auto")),
        )
        parent = SapphireServer(config)
        parent.register_endpoint(SparqlEndpoint(
            dataset.store,
            EndpointConfig(timeout_s=float(spec.get("timeout_s", 2.0))),  # type: ignore[arg-type]
            name="snapshot-init",
            execution=config.execution,
        ))
        cache_path = base_path + ".cache.sqlite"
        save_cache(parent.cache, cache_path)
        out["cache_snapshot"] = cache_path
    return out


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


class _WorkerHttpServer(ThreadingHTTPServer):
    """The per-worker HTTP server over a shared or re-bound socket.

    Non-daemon request threads + ``block_on_close`` give graceful
    drain: ``shutdown()`` stops accepting, ``server_close()`` then waits
    for every in-flight request to finish before the worker exits.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, handler, *, reuse_port: bool = False,
                 fileno: Optional[int] = None) -> None:
        self._reuse_port = reuse_port
        if fileno is None:
            super().__init__(address, handler)
        else:
            # Adopt the parent's already-listening socket: no bind, no
            # listen — accept() on the shared file description.
            super().__init__(address, handler, bind_and_activate=False)
            self.socket.close()
            self.socket = socket.socket(fileno=fileno)
            self.server_address = self.socket.getsockname()
            self.server_name, self.server_port = self.server_address[:2]

    def server_bind(self) -> None:
        if self._reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def _drain_and_exit(httpd: _WorkerHttpServer) -> None:
    httpd.shutdown()
    httpd.server_close()  # blocks until in-flight requests complete


def _worker_main(index: int, factory: Callable, spec: Dict[str, object],
                 host: str, port: int, use_reuse_port: bool,
                 app_kwargs: Dict[str, object], conn: Connection) -> None:
    """Worker entry point (module-level so ``spawn`` can import it).

    Builds the backend, serves HTTP from background threads, and runs
    the control loop on the main thread: ``ping`` → ``pong``, ``stats``
    → the app's ``/stats`` body, ``shutdown`` → graceful drain.  EOF on
    the pipe (the parent died) also drains and exits, so orphaned
    workers never linger.
    """
    try:
        backend = factory(spec)
        app = SparqlWsgiApp(backend, worker_id=str(index),
                            **app_kwargs)  # type: ignore[arg-type]
        if use_reuse_port:
            httpd = _WorkerHttpServer((host, port), _WsgiRequestHandler,
                                      reuse_port=True)
        else:
            from multiprocessing.reduction import recv_handle

            httpd = _WorkerHttpServer((host, port), _WsgiRequestHandler,
                                      fileno=recv_handle(conn))
        httpd.wsgi_app = app  # type: ignore[attr-defined]
    except Exception as exc:  # noqa: BLE001 — report, don't vanish silently
        try:
            conn.send(("failed", index, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return

    serving = threading.Thread(target=httpd.serve_forever,
                               name=f"prefork-worker-{index}", daemon=True)
    serving.start()
    conn.send(("ready", index, os.getpid()))
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "ping":
                conn.send(("pong", index))
            elif kind == "stats":
                conn.send(("stats", index, app.stats_body()))
            elif kind == "shutdown":
                _drain_and_exit(httpd)
                conn.send(("bye", index, app.stats_body()))
                return
    except (EOFError, OSError):
        _drain_and_exit(httpd)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent / coordinator
# ----------------------------------------------------------------------


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("index", "process", "conn", "lock", "restarts", "pid")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn: Optional[Connection] = None
        self.lock = threading.Lock()
        self.restarts = 0
        self.pid: Optional[int] = None


class _CoordinatorServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class _CoordinatorHandler(_WsgiRequestHandler):
    """The coordinator's observability port: merged cluster ``/stats``.

    Reuses the WSGI request adapter with a tiny app closure installed by
    :class:`PreforkServer` — same wire behaviour as a worker's stats
    routes, but the bodies are cluster-wide merges.
    """


class PreforkServer:
    """K pre-forked workers serving one SPARQL endpoint address.

    ``factory(spec)`` builds each worker's backend *inside the worker*
    (it must be a module-level callable — spawn pickles it by name);
    :func:`build_backend_from_spec` is the standard one.  ``app_kwargs``
    are passed through to each worker's
    :class:`~repro.net.wsgi.SparqlWsgiApp`.

    The coordinator serves merged observability on its own ephemeral
    port (:attr:`stats_url`): per-worker counters and latency histograms
    merged bucket-wise, worker liveness, and shard depths.
    """

    def __init__(
        self,
        factory: Callable = build_backend_from_spec,
        spec: Optional[Dict[str, object]] = None,
        *,
        n_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        app_kwargs: Optional[Dict[str, object]] = None,
        force_fd_passing: bool = False,
        health_interval_s: float = 0.5,
        start_timeout_s: float = 120.0,
        drain_timeout_s: float = 10.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.factory = factory
        self.spec = dict(spec or {})
        self.n_workers = n_workers
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.app_kwargs = dict(app_kwargs or {})
        self.use_reuse_port = HAS_REUSEPORT and not force_fd_passing
        self.health_interval_s = health_interval_s
        self.start_timeout_s = start_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.series = StatsTimeSeries()
        self._context = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = []
        self._listen_socket: Optional[socket.socket] = None
        self._coordinator: Optional[_CoordinatorServer] = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        """The query endpoint URL (load-balanced across workers)."""
        return f"http://{self.host}:{self.port}/sparql"

    @property
    def stats_url(self) -> str:
        """Base URL of the coordinator's merged observability port."""
        if self._coordinator is None:
            raise RuntimeError("coordinator is not running")
        return ("http://%s:%d" % self._coordinator.server_address[:2])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PreforkServer":
        if self._started:
            raise RuntimeError("PreforkServer is already running")
        self._started = True
        self._bind()
        try:
            for index in range(self.n_workers):
                worker = _Worker(index)
                self._spawn(worker)
                self._workers.append(worker)
            deadline = time.monotonic() + self.start_timeout_s
            for worker in self._workers:
                self._await_ready(worker, deadline)
        except Exception:
            self.stop()
            raise
        if self.use_reuse_port and self._listen_socket is not None:
            # The port-reservation socket has done its job; the workers'
            # own SO_REUSEPORT sockets now hold the address.
            self._listen_socket.close()
            self._listen_socket = None
        self._start_coordinator()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="prefork-monitor", daemon=True)
        self._monitor.start()
        return self

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.use_reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, self._requested_port))
        if not self.use_reuse_port:
            # FD-passing mode: this is THE listening socket all workers
            # accept on.  In reuse-port mode we never listen — a bound,
            # non-listening socket only reserves the ephemeral port and
            # receives no connections.
            sock.listen(128)
        self.port = sock.getsockname()[1]
        self._listen_socket = sock

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(worker.index, self.factory, self.spec, self.host, self.port,
                  self.use_reuse_port, self.app_kwargs, child_conn),
            name=f"prefork-worker-{worker.index}",
            daemon=False,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.pid = process.pid
        if not self.use_reuse_port:
            from multiprocessing.reduction import send_handle

            assert self._listen_socket is not None
            send_handle(parent_conn, self._listen_socket.fileno(), process.pid)

    def _await_ready(self, worker: _Worker, deadline: float) -> None:
        assert worker.conn is not None
        remaining = max(0.1, deadline - time.monotonic())
        if not worker.conn.poll(remaining):
            raise RuntimeError(
                f"worker {worker.index} did not come up within "
                f"{self.start_timeout_s:.0f}s")
        message = worker.conn.recv()
        if message[0] == "failed":
            raise RuntimeError(f"worker {worker.index} failed to start: "
                               f"{message[2]}")
        if message[0] != "ready":
            raise RuntimeError(f"worker {worker.index} sent unexpected "
                               f"{message[0]!r} before ready")

    def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, exit workers."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.health_interval_s * 4 + 1.0)
            self._monitor = None
        for worker in self._workers:
            self._shutdown_worker(worker)
        self._workers.clear()
        if self._coordinator is not None:
            self._coordinator.shutdown()
            self._coordinator.server_close()
            self._coordinator = None
        if self._listen_socket is not None:
            self._listen_socket.close()
            self._listen_socket = None

    def _shutdown_worker(self, worker: _Worker) -> None:
        process, conn = worker.process, worker.conn
        if conn is not None:
            with worker.lock:
                try:
                    self._drain_pipe(conn)
                    conn.send(("shutdown",))
                    if conn.poll(self.drain_timeout_s):
                        conn.recv()  # ("bye", index, final_stats)
                except (BrokenPipeError, EOFError, OSError):
                    pass
                conn.close()
            worker.conn = None
        if process is not None:
            process.join(timeout=self.drain_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            worker.process = None

    def __enter__(self) -> "PreforkServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Health / respawn
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.health_interval_s):
            for worker in self._workers:
                process = worker.process
                if process is None or process.is_alive():
                    continue
                if self._stopping.is_set():
                    return
                # Dead worker: reap it and bring up a replacement on the
                # same index.  Its counters die with it (documented) —
                # respawn keeps *capacity*, not history.
                with worker.lock:
                    if worker.conn is not None:
                        worker.conn.close()
                    process.join(timeout=1.0)
                    worker.restarts += 1
                    try:
                        self._spawn(worker)
                        self._await_ready(
                            worker,
                            time.monotonic() + self.start_timeout_s)
                    except Exception:  # noqa: BLE001 — retry next tick
                        worker.process = None
                        worker.conn = None

    def workers_view(self) -> List[Dict[str, object]]:
        """Liveness + restart counts, the ``/stats`` ``workers`` field."""
        return [
            {
                "id": worker.index,
                "pid": worker.pid,
                "alive": bool(worker.process is not None
                              and worker.process.is_alive()),
                "restarts": worker.restarts,
            }
            for worker in self._workers
        ]

    # ------------------------------------------------------------------
    # Merged observability
    # ------------------------------------------------------------------

    @staticmethod
    def _drain_pipe(conn: Connection) -> None:
        # A previous timed-out call may have left a stale reply queued;
        # drop everything pending so request/response stay paired.
        while conn.poll(0):
            try:
                conn.recv()
            except (EOFError, OSError):
                return

    def _call(self, worker: _Worker, message: Tuple,
              timeout_s: float) -> Optional[Tuple]:
        conn = worker.conn
        if conn is None:
            return None
        with worker.lock:
            try:
                self._drain_pipe(conn)
                conn.send(message)
                if conn.poll(timeout_s):
                    return conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                return None
        return None

    def ping(self, timeout_s: float = 2.0) -> List[bool]:
        """Round-trip liveness through each worker's control pipe."""
        return [
            (self._call(worker, ("ping",), timeout_s) or (None,))[0] == "pong"
            for worker in self._workers
        ]

    def stats(self, timeout_s: float = 5.0) -> Dict[str, object]:
        """The merged cluster ``/stats`` body.

        Per-worker bodies (each internally consistent — one lock
        acquisition per worker) merged by
        :func:`~repro.net.metrics.merge_stats_bodies`; shard depths are
        every worker's same snapshot, so they are reported once, not
        summed.
        """
        bodies: List[Dict[str, object]] = []
        for worker in self._workers:
            reply = self._call(worker, ("stats",), timeout_s)
            if reply is not None and reply[0] == "stats":
                bodies.append(reply[2])
        merged = merge_stats_bodies(bodies)
        for body in bodies:
            if "shards" in body:
                merged["shards"] = body["shards"]
                break
        merged["n_workers"] = self.n_workers
        merged["workers"] = self.workers_view()
        return merged

    def health(self) -> Dict[str, object]:
        alive = sum(1 for view in self.workers_view() if view["alive"])
        return {
            "status": "ok" if alive == self.n_workers else "degraded",
            "n_workers": self.n_workers,
            "alive": alive,
            "workers": self.workers_view(),
        }

    def _start_coordinator(self) -> None:
        pool = self

        def coordinator_app(environ, start_response):
            import json

            path = environ.get("PATH_INFO", "/") or "/"
            if path == "/stats":
                status, body = 200, pool.stats()
            elif path == "/health":
                status, body = 200, pool.health()
            elif path == "/stats/series":
                points = pool.series.sample(pool.stats())
                status, body = 200, {"points": points,
                                     "max_points": pool.series.max_points}
            else:
                status, body = 404, {"error": {
                    "status": 404,
                    "message": f"no such resource: {path} "
                               f"(coordinator serves /stats, /stats/series,"
                               f" /health; queries go to {pool.url})"}}
            payload = json.dumps(body).encode("utf-8")
            start_response(
                "200 OK" if status == 200 else "404 Not Found",
                [("Content-Type", "application/json; charset=utf-8"),
                 ("Content-Length", str(len(payload)))])
            return [payload]

        # The stats app never reads bodies, so any max works here.
        coordinator_app.max_query_bytes = 1 << 20  # type: ignore[attr-defined]
        self._coordinator = _CoordinatorServer((self.host, 0),
                                               _CoordinatorHandler)
        self._coordinator.wsgi_app = coordinator_app  # type: ignore[attr-defined]
        threading.Thread(target=self._coordinator.serve_forever,
                         name="prefork-coordinator", daemon=True).start()
