"""WSGI application implementing the SPARQL 1.1 Protocol.

The protocol logic lives here, framework-free, so the same application
object runs under the bundled :class:`~repro.net.server.SparqlHttpServer`
(stdlib ``ThreadingHTTPServer``), under ``wsgiref``, or under any
production WSGI container.

Routes
------

``GET  /sparql?query=...``          — query via query string
``POST /sparql`` (url-encoded)      — query via ``query=`` form field
``POST /sparql`` (sparql-query)     — raw query text as the request body
``POST /complete`` (JSON)           — QCM auto-completion (Sapphire backends)
``POST /suggest`` (JSON)            — run + QSM suggestions (Sapphire backends)
``GET  /health``                    — liveness probe (JSON)
``GET  /stats``                     — serving counters (JSON)
``GET  /stats/series``              — append + return a stats time series
``GET  /stats/slow``                — slow-query log with full traces (JSON)

``/`` is an alias for ``/sparql`` so a bare endpoint URL works.

The suggestion routes exist when the backend is a
:class:`~repro.core.sapphire.SapphireServer` (anything with
``complete``/``run_query``); plain endpoints answer 404 for them.
Bodies are JSON — ``{"text": ..., "k": ..., "session": ...}`` for
``/complete``, ``{"query": ..., "suggest": ..., "session": ...}`` for
``/suggest`` — and responses use the canonical encoding of
:mod:`repro.net.suggest`, so a loopback ``/complete`` is byte-identical
to the in-process completion.  An optional ``session`` token groups a
user's calls; per-session activity counters surface in ``/stats``.
Both routes pass through the same admission control and deadline rules
as queries — a suggestion round occupies a worker slot exactly like a
query does.

Admission control
-----------------

A bounded worker pool (``max_workers`` concurrent queries) with a
bounded wait queue (``queue_limit``): when all workers are busy and the
queue is full, the request is rejected immediately with **503** — the
same shape public endpoints like DBpedia present under load, and the
behaviour :class:`~repro.net.client.HttpSparqlEndpoint` retries with
jitter.  A query the backend kills for exceeding its timeout budget
surfaces as **504** with a JSON error body.  Both outcomes are counted
in ``/stats`` so a load test can reconcile client and server totals.

Observability
-------------

Counters are kept **per route** by :class:`~repro.net.metrics.ServerStats`
(fixed log-scale latency histograms, not reservoir samples), with
queue-depth/admission high-water gauges and — when the backend is a
``SapphireServer`` — suggestion-cache hit/miss counters.  Each ``GET
/stats/series`` appends the current counters as one point in a bounded
server-side time series and returns the whole series, so a load
driver's polling tick is the sampling clock.

Tracing (docs/tracing.md): a request is executed under an
operator-level :class:`~repro.sparql.trace.Tracer` when it asks for
``analyze=true``, when it arrives with an ``X-Repro-Trace-Id`` header
(an upstream federated query is already tracing — the server continues
that trace id), or when it loses the ``trace_sample_rate`` coin flip.
Finished traces feed the bounded :class:`~repro.net.metrics.SlowQueryLog`
served under ``GET /stats/slow``; ``analyze=true`` responses are the
rendered trace tree as ``text/plain``.
"""

from __future__ import annotations

import inspect
import json
import math
import random
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs

from ..endpoint.endpoint import EndpointTimeout, QueryRejected
from ..sparql.ast_nodes import Query
from ..sparql.errors import SparqlError
from ..sparql.parser import parse_query
from ..sparql.results import SelectResult
from ..sparql.trace import Tracer
from .formats import NotAcceptable, negotiate
from .metrics import ServerStats, SlowQueryLog, StatsTimeSeries
from .suggest import (
    MIME_JSON_BODY,
    completion_document,
    dump_document,
    outcome_document,
)

__all__ = ["ServerStats", "SparqlWsgiApp", "WORKER_HEADER"]

StartResponse = Callable[..., None]

#: Media type for SPARQL queries shipped as a raw POST body.
MIME_SPARQL_QUERY = "application/sparql-query"
MIME_FORM = "application/x-www-form-urlencoded"

#: Response header naming the pre-fork worker that served the request.
#: Echoed on every response when the app was built with a ``worker_id``,
#: so load drivers can attribute responses to workers (docs/server.md).
WORKER_HEADER = "X-Repro-Worker"

_STATUS_LINES = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    406: "406 Not Acceptable",
    413: "413 Payload Too Large",
    415: "415 Unsupported Media Type",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
    504: "504 Gateway Timeout",
}


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample.

    Kept here (not only in :mod:`repro.net.metrics`) because benchmark
    code computes exact percentiles over raw client-side samples and
    imports this helper from the wsgi module.
    """
    if not sorted_values:
        return 0.0
    # Nearest-rank: ceil(f*n)-1, clamped — int(f*n) would float one rank
    # high (p50 of [1,2,3,4] must be 2, and p99 of 100 is not the max).
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[min(len(sorted_values) - 1, rank)]


class SparqlWsgiApp:
    """WSGI callable speaking the SPARQL 1.1 Protocol for one backend.

    ``backend`` is anything with the endpoint query surface: a
    :class:`~repro.endpoint.endpoint.SparqlEndpoint`, a
    :class:`~repro.federation.fedx.FederatedQueryProcessor`, or a
    :class:`~repro.core.sapphire.SapphireServer` (served through its
    federation).  Parsed queries are dispatched to ``select``/``ask`` by
    form, or to ``run`` when the backend offers it.
    """

    def __init__(
        self,
        backend,
        *,
        max_workers: int = 8,
        queue_limit: int = 16,
        deadline_s: Optional[float] = None,
        max_query_bytes: int = 256 * 1024,
        trace_sample_rate: float = 0.0,
        slow_query_threshold_s: float = 0.5,
        slow_log_size: int = 32,
        worker_id: Optional[str] = None,
    ) -> None:
        # A SapphireServer fronts its endpoints with a federation; serve
        # that for /sparql, and keep the server itself as the Predictive
        # User Model behind /complete and /suggest.
        self.suggester = (
            backend
            if hasattr(backend, "complete") and hasattr(backend, "run_query")
            else None
        )
        federation = getattr(backend, "federation", None)
        self.backend = federation if federation is not None else backend
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_workers = max_workers
        self.queue_limit = queue_limit
        if deadline_s is None:
            deadline_s = _default_deadline(self.backend)
        if deadline_s is not None and deadline_s == float("inf"):
            deadline_s = None
        self.deadline_s = deadline_s
        self.max_query_bytes = max_query_bytes
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
        self.trace_sample_rate = trace_sample_rate
        self.worker_id = worker_id
        self.slow_log = SlowQueryLog(slow_log_size, slow_query_threshold_s)
        self._trace_rng = random.Random()
        # Tracing is duck-typed: only backends whose query surface grew
        # a ``tracer`` parameter get traced requests.  Foreign backends
        # keep working exactly as before (never handed a tracer).
        self._traceable = _accepts_tracer(
            getattr(self.backend, "run", None)
            or getattr(self.backend, "select", None)
        )
        self._suggest_traceable = self.suggester is not None and _accepts_tracer(
            getattr(self.suggester, "run_query", None)
        ) and _accepts_tracer(getattr(self.suggester, "complete", None))
        self.stats = ServerStats()
        self.series = StatsTimeSeries()
        self._workers = threading.BoundedSemaphore(max_workers)
        self._queue_lock = threading.Lock()
        self._queued = 0
        self._in_flight = 0
        # Suggestion-API sessions: token -> activity counters, bounded
        # (oldest-evicted) so an unauthenticated client cannot grow
        # server memory by minting tokens.
        self._sessions: Dict[str, Dict[str, int]] = {}
        self._sessions_lock = threading.Lock()
        self.max_sessions = 1024

    # ------------------------------------------------------------------
    # WSGI entry point
    # ------------------------------------------------------------------

    def __call__(self, environ, start_response: StartResponse) -> Iterable[bytes]:
        path = environ.get("PATH_INFO", "/") or "/"
        method = environ.get("REQUEST_METHOD", "GET").upper()

        if self.worker_id is not None:
            # Stamp every response — including errors — with this
            # worker's id so clients can attribute load spreading.
            original = start_response

            def start_response(status, headers, _orig=original):  # type: ignore[misc]
                return _orig(status, list(headers)
                             + [(WORKER_HEADER, self.worker_id)])

        if path == "/health":
            in_flight, queued = self._gauges()
            body = {
                "status": "ok",
                "in_flight": in_flight,
                "queued": queued,
                "max_workers": self.max_workers,
                "queue_limit": self.queue_limit,
            }
            if self.worker_id is not None:
                body["worker"] = self.worker_id
            return self._json_response(start_response, 200, body)
        if path == "/stats":
            return self._json_response(start_response, 200, self._stats_body())
        if path == "/stats/slow":
            return self._json_response(start_response, 200,
                                       self.slow_log.snapshot())
        if path == "/stats/series":
            # Appending on GET makes the caller's polling tick the
            # sampling clock: no server-side timer thread to manage.
            points = self.series.sample(self._stats_body())
            return self._json_response(start_response, 200, {
                "points": points,
                "max_points": self.series.max_points,
            })
        if path in ("/complete", "/suggest"):
            if method != "POST":
                return self._error(start_response, 405,
                                   "use POST with a JSON body",
                                   extra_headers=[("Allow", "POST")])
            started = time.perf_counter()
            status, headers, payload, rows = self._handle_suggestion(path, environ)
            elapsed = time.perf_counter() - started
            self.stats.record(status, elapsed, rows=rows, route=path.lstrip("/"))
            headers.setdefault("Content-Length", str(len(payload)))
            start_response(_STATUS_LINES[status], list(headers.items()))
            return [payload]
        if path not in ("/", "/sparql"):
            return self._error(start_response, 404, f"no such resource: {path}")
        if method not in ("GET", "POST"):
            return self._error(start_response, 405,
                               "use GET ?query= or POST a query",
                               extra_headers=[("Allow", "GET, POST")])

        started = time.perf_counter()
        status, headers, payload, rows = self._handle_query(environ, method)
        elapsed = time.perf_counter() - started
        self.stats.record(status, elapsed, rows=rows, route="sparql")
        headers.setdefault("Content-Length", str(len(payload)))
        start_response(_STATUS_LINES[status], list(headers.items()))
        return [payload]

    def _gauges(self) -> Tuple[int, int]:
        """``(in_flight, queued)`` read under one lock acquisition.

        Bare attribute reads could interleave with an admission in
        progress and report a request in neither gauge; the replay
        harness reconciles against these numbers, so they must be a
        consistent pair.
        """
        with self._queue_lock:
            return self._in_flight, self._queued

    def stats_body(self) -> Dict[str, object]:
        """Public form of the ``/stats`` document (pre-fork workers ship
        this over their control pipe for the coordinator's merged view)."""
        return self._stats_body()

    def _stats_body(self) -> Dict[str, object]:
        """The ``/stats`` document: counters + gauges + cache + sessions.

        Counters come from one :meth:`ServerStats.snapshot` (a single
        lock acquisition — never torn per-field reads) and the admission
        gauges from one :meth:`_gauges` read, so a ``/stats`` poll taken
        mid-load is internally consistent.
        """
        body = self.stats.snapshot()
        in_flight, queued = self._gauges()
        body["in_flight"] = in_flight
        body["queued"] = queued
        body["max_workers"] = self.max_workers
        body["queue_limit"] = self.queue_limit
        if self.worker_id is not None:
            body["worker"] = self.worker_id
        with self._sessions_lock:
            body["sessions"] = len(self._sessions)
            body["session_activity"] = sum(
                sum(counters.values()) for counters in self._sessions.values()
            )
        shards = self._shard_depths()
        if shards is not None:
            body["shards"] = {"n_shards": len(shards), "depths": shards}
        cache = getattr(self.suggester, "cache", None)
        lookup_stats = getattr(cache, "lookup_stats", None)
        if lookup_stats is not None:
            body["cache"] = lookup_stats()
        # Summary only — full traces live under GET /stats/slow.
        slow = self.slow_log.snapshot()
        body["slow_queries"] = {
            "entries": len(slow["entries"]),  # type: ignore[arg-type]
            "slow_count": slow["slow_count"],
            "offered": slow["offered"],
            "threshold_s": slow["threshold_s"],
            "sample_rate": self.trace_sample_rate,
        }
        return body

    def _shard_depths(self) -> Optional[List[int]]:
        """Per-shard triple counts when the backend's store is sharded.

        Duck-typed like the planner's shard detection: any backend whose
        store exposes ``shard_sizes()`` (one endpoint, or the first
        member of a federation) contributes its depths to ``/stats``.
        """
        candidates = [self.backend]
        candidates.extend(getattr(self.backend, "endpoints", None) or ())
        for candidate in candidates:
            store = getattr(candidate, "store", None)
            sizes = getattr(getattr(store, "backend", None),
                            "shard_sizes", None)
            if sizes is not None:
                return sizes()
        return None

    # ------------------------------------------------------------------
    # Query handling
    # ------------------------------------------------------------------

    def _handle_query(
        self, environ, method: str
    ) -> Tuple[int, Dict[str, str], bytes, int]:
        try:
            text, explain, analyze = self._extract_query(environ, method)
        except _HttpFail as fail:
            return _failure(fail.status, str(fail))
        if text is None:
            return _failure(400, "missing required 'query' parameter")

        if explain and not analyze:
            return self._handle_explain(text)
        if analyze and not self._traceable:
            return _failure(400, "this backend does not support analyze")

        mime = writer = None
        if not analyze:
            try:
                mime, writer = negotiate(environ.get("HTTP_ACCEPT"))
            except NotAcceptable as exc:
                return _failure(406, str(exc))

        try:
            parsed = parse_query(text)
        except SparqlError as exc:
            return _failure(400, f"parse error: {exc}")

        # ANALYZE *executes*, so unlike EXPLAIN it goes through the same
        # admission control and deadline as any query.
        tracer = self._maybe_tracer(environ, text, analyze) \
            if self._traceable else None

        admitted, queued_s = self._admit()
        if not admitted:
            return _failure(
                503, "server overloaded: worker pool and queue are full")
        try:
            if self.deadline_s is not None and queued_s >= self.deadline_s:
                return _failure(
                    503, f"queued {queued_s:.2f}s, past the "
                         f"{self.deadline_s:.2f}s deadline")
            with self._queue_lock:
                self._in_flight += 1
                self.stats.observe_queue(self._queued, self._in_flight)
            try:
                result = self._execute(parsed, tracer)
            finally:
                with self._queue_lock:
                    self._in_flight -= 1
        except QueryRejected as exc:
            return _failure(503, str(exc))
        except EndpointTimeout as exc:
            return _failure(504, str(exc))
        except SparqlError as exc:
            return _failure(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler must not crash the server
            return _failure(500, f"{type(exc).__name__}: {exc}")
        finally:
            self._workers.release()

        rows = len(result.rows) if isinstance(result, SelectResult) else 0
        trace_doc = None
        if tracer is not None:
            trace = tracer.finish()
            trace_doc = trace.to_dict()
            self.slow_log.offer(text, trace.wall_ms / 1000.0, trace_doc,
                                route="sparql")

        if analyze:
            from ..eval.reporting import format_trace

            payload = (format_trace(trace_doc) + "\n").encode("utf-8")
            return 200, {"Content-Type": "text/plain; charset=utf-8"}, payload, rows

        try:
            payload = writer(result).encode("utf-8")
        except Exception as exc:  # noqa: BLE001 — malformed backend result
            return _failure(500, f"result serialization failed: "
                                 f"{type(exc).__name__}: {exc}")
        headers = {"Content-Type": f"{mime}; charset=utf-8"}
        if isinstance(result, SelectResult) and result.truncated:
            # The W3C result formats carry no truncation marker, but
            # the endpoint's row cap must stay visible to clients —
            # HttpSparqlEndpoint restores the flag from this header.
            headers["X-Result-Truncated"] = "true"
        return 200, headers, payload, rows

    def _maybe_tracer(
        self, environ, text: str, analyze: bool
    ) -> Optional[Tracer]:
        """The tracing decision for one request.

        Traced when: ANALYZE was requested, an upstream trace id arrived
        (a federated caller is tracing — continue its trace id so the
        spans stitch), or the sample-rate coin flip wins.  Callers gate
        on the capability flags (``_traceable``/``_suggest_traceable``)
        so backends predating the ``tracer`` parameter never see one.
        """
        inbound = (environ.get("HTTP_X_REPRO_TRACE_ID") or "").strip()
        if not (analyze or inbound or (
            self.trace_sample_rate > 0.0
            and self._trace_rng.random() < self.trace_sample_rate
        )):
            return None
        parent = (environ.get("HTTP_X_REPRO_PARENT_SPAN") or "").strip()
        return Tracer(inbound or None, parent_span_id=parent or None, query=text)

    # ------------------------------------------------------------------
    # Suggestion API (the Predictive User Model over HTTP)
    # ------------------------------------------------------------------

    def _handle_suggestion(
        self, path: str, environ
    ) -> Tuple[int, Dict[str, str], bytes, int]:
        if self.suggester is None:
            return _failure(
                404, "this endpoint has no predictive model: serve a "
                     "SapphireServer to enable /complete and /suggest")
        try:
            document = self._read_json_body(environ)
        except _HttpFail as fail:
            return _failure(fail.status, str(fail))

        session = document.get("session")
        if session is not None and not isinstance(session, str):
            return _failure(400, "'session' must be a string token")

        snippet = document.get("query") or document.get("text") or ""
        tracer = None
        if self._suggest_traceable:
            tracer = self._maybe_tracer(
                environ, snippet if isinstance(snippet, str) else "", False
            )

        admitted, queued_s = self._admit()
        if not admitted:
            return _failure(
                503, "server overloaded: worker pool and queue are full")
        try:
            if self.deadline_s is not None and queued_s >= self.deadline_s:
                return _failure(
                    503, f"queued {queued_s:.2f}s, past the "
                         f"{self.deadline_s:.2f}s deadline")
            with self._queue_lock:
                self._in_flight += 1
                self.stats.observe_queue(self._queued, self._in_flight)
            try:
                if path == "/complete":
                    response = self._run_complete(document, tracer)
                else:
                    response = self._run_suggest(document, tracer)
            finally:
                with self._queue_lock:
                    self._in_flight -= 1
        except _HttpFail as fail:
            return _failure(fail.status, str(fail))
        except QueryRejected as exc:
            return _failure(503, str(exc))
        except EndpointTimeout as exc:
            return _failure(504, str(exc))
        except SparqlError as exc:
            return _failure(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler must not crash the server
            return _failure(500, f"{type(exc).__name__}: {exc}")
        finally:
            self._workers.release()

        if session is not None:
            self._touch_session(session, path.lstrip("/"))
        if tracer is not None:
            trace = tracer.finish()
            self.slow_log.offer(
                snippet if isinstance(snippet, str) else "",
                trace.wall_ms / 1000.0,
                trace.to_dict(),
                route=path.lstrip("/"),
            )
        payload = dump_document(response)
        headers = {"Content-Type": f"{MIME_JSON_BODY}; charset=utf-8"}
        return 200, headers, payload, 0

    def _run_complete(
        self, document: Dict, tracer: Optional[Tracer] = None
    ) -> Dict:
        text = document.get("text")
        if not isinstance(text, str):
            raise _HttpFail(400, "missing required 'text' string")
        k = document.get("k")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
            raise _HttpFail(400, "'k' must be a positive integer")
        recent = document.get("recent")
        if recent is not None:
            if not isinstance(recent, list) or not all(
                isinstance(surface, str) for surface in recent
            ):
                raise _HttpFail(400, "'recent' must be a list of strings")
            recent = recent[-32:]  # bounded, like SapphireSession history
        kwargs = {} if recent is None else {"boost_surfaces": recent}
        if tracer is not None:
            return completion_document(
                self.suggester.complete(text, k, tracer, **kwargs)
            )
        return completion_document(self.suggester.complete(text, k, **kwargs))

    def _run_suggest(
        self, document: Dict, tracer: Optional[Tracer] = None
    ) -> Dict:
        query = document.get("query")
        if not isinstance(query, str):
            raise _HttpFail(400, "missing required 'query' string")
        suggest = document.get("suggest", True)
        if not isinstance(suggest, bool):
            raise _HttpFail(400, "'suggest' must be a boolean")
        if tracer is not None:
            outcome = self.suggester.run_query(query, suggest=suggest, tracer=tracer)
        else:
            outcome = self.suggester.run_query(query, suggest=suggest)
        return outcome_document(outcome)

    def _read_json_body(self, environ) -> Dict:
        """The request body as a JSON object (suggestion routes)."""
        content_type = (environ.get("CONTENT_TYPE") or "").split(";")[0].strip().lower()
        if content_type not in (MIME_JSON_BODY, ""):
            raise _HttpFail(
                415, f"unsupported Content-Type {content_type!r}: "
                     f"use {MIME_JSON_BODY}")
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_query_bytes:
            raise _HttpFail(413, f"request body exceeds {self.max_query_bytes} bytes")
        body = environ["wsgi.input"].read(length) if length else b""
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpFail(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise _HttpFail(400, "request body must be a JSON object")
        return document

    def _touch_session(self, token: str, route: str) -> None:
        """Record one call against a session token (bounded table)."""
        with self._sessions_lock:
            counters = self._sessions.get(token)
            if counters is None:
                while len(self._sessions) >= self.max_sessions:
                    self._sessions.pop(next(iter(self._sessions)))
                counters = self._sessions[token] = {}
            counters[route] = counters.get(route, 0) + 1

    def session_counters(self, token: str) -> Dict[str, int]:
        """Activity counters for one session token (empty if unknown)."""
        with self._sessions_lock:
            return dict(self._sessions.get(token, ()))

    def _handle_explain(self, text: str) -> Tuple[int, Dict[str, str], bytes, int]:
        """EXPLAIN over the protocol: ``explain=true`` alongside the query.

        Estimation-only by the store's meter-free contract, so it
        bypasses admission control — an EXPLAIN can never occupy a
        worker slot or trip the deadline.  The plan travels as plain
        text, the same dump the in-process ``explain()`` surfaces
        return.
        """
        explain = getattr(self.backend, "explain", None)
        if explain is None:
            return _failure(400, "this endpoint does not support explain")
        try:
            plan = explain(text)
        except SparqlError as exc:
            return _failure(400, f"parse error: {exc}")
        except Exception as exc:  # noqa: BLE001 — a handler must not crash the server
            return _failure(500, f"{type(exc).__name__}: {exc}")
        payload = plan.encode("utf-8")
        return 200, {"Content-Type": "text/plain; charset=utf-8"}, payload, 0

    @staticmethod
    def _flag(params: Dict[str, List[str]], name: str) -> bool:
        values = params.get(name)
        return bool(values) and values[0].strip().lower() in ("1", "true", "yes")

    @classmethod
    def _explain_flag(cls, params: Dict[str, List[str]]) -> bool:
        return cls._flag(params, "explain")

    def _extract_query(
        self, environ, method: str
    ) -> Tuple[Optional[str], bool, bool]:
        """The query text plus the EXPLAIN and ANALYZE request flags."""
        if method == "GET":
            params = parse_qs(environ.get("QUERY_STRING", ""))
            values = params.get("query")
            return (
                values[0] if values else None,
                self._flag(params, "explain"),
                self._flag(params, "analyze"),
            )

        content_type = (environ.get("CONTENT_TYPE") or "").split(";")[0].strip().lower()
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > self.max_query_bytes:
            raise _HttpFail(413, f"request body exceeds {self.max_query_bytes} bytes")
        body = environ["wsgi.input"].read(length) if length else b""
        try:
            decoded = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _HttpFail(400, f"request body is not valid UTF-8: {exc}") from exc
        if content_type == MIME_SPARQL_QUERY:
            return decoded or None, False, False
        if content_type in (MIME_FORM, ""):
            params = parse_qs(decoded)
            values = params.get("query")
            return (
                values[0] if values else None,
                self._flag(params, "explain"),
                self._flag(params, "analyze"),
            )
        raise _HttpFail(
            415, f"unsupported Content-Type {content_type!r}: "
                 f"use {MIME_FORM} or {MIME_SPARQL_QUERY}")

    def _admit(self) -> Tuple[bool, float]:
        """Try to claim a worker slot; returns (admitted, seconds queued)."""
        if self._workers.acquire(blocking=False):
            return True, 0.0
        with self._queue_lock:
            if self._queued >= self.queue_limit:
                return False, 0.0
            self._queued += 1
            self.stats.observe_queue(self._queued, self._in_flight)
        started = time.perf_counter()
        try:
            # Cap the queue wait at the request deadline: waiting longer
            # can only produce a response the client has given up on.
            admitted = self._workers.acquire(timeout=self.deadline_s)
        finally:
            with self._queue_lock:
                self._queued -= 1
        return admitted, time.perf_counter() - started

    def _execute(self, parsed: Query, tracer: Optional[Tracer] = None):
        backend = self.backend
        # FederatedQueryProcessor.select()/ask() only take query text,
        # but its run() accepts a parsed AST; endpoints take both.
        # ``tracer`` is only ever non-None when the capability check at
        # construction saw a ``tracer`` parameter on this surface.
        run = getattr(backend, "run", None)
        if run is not None:
            return run(parsed, tracer=tracer) if tracer is not None else run(parsed)
        if parsed.form == "ASK":
            return backend.ask(parsed, tracer) if tracer is not None else backend.ask(parsed)
        return backend.select(parsed, tracer) if tracer is not None else backend.select(parsed)

    # ------------------------------------------------------------------
    # Response helpers
    # ------------------------------------------------------------------

    def _json_response(self, start_response: StartResponse, status: int,
                       body: Dict[str, object]) -> Iterable[bytes]:
        payload = json.dumps(body).encode("utf-8")
        start_response(_STATUS_LINES[status], list(_json_headers(len(payload)).items()))
        return [payload]

    def _error(self, start_response: StartResponse, status: int, message: str,
               extra_headers: Optional[List[Tuple[str, str]]] = None) -> Iterable[bytes]:
        payload = _error_body(status, message)
        headers = list(_json_headers(len(payload)).items()) + (extra_headers or [])
        start_response(_STATUS_LINES[status], headers)
        return [payload]


def _accepts_tracer(method) -> bool:
    """True when ``method`` has an inspectable ``tracer`` parameter."""
    if method is None:
        return False
    try:
        return "tracer" in inspect.signature(method).parameters
    except (TypeError, ValueError):
        return False


def _default_deadline(backend) -> Optional[float]:
    """A request deadline inferred from the backend's endpoint config(s).

    A bare endpoint contributes its own ``EndpointConfig.timeout_s``; a
    federation contributes the largest member timeout (one federated
    query fans out into several sub-queries, so any single member's
    budget is a floor, not a cap).  Returns None when nothing is
    configured — queue waits are then unbounded by deadline.
    """
    timeout = getattr(getattr(backend, "config", None), "timeout_s", None)
    if isinstance(timeout, (int, float)):
        return float(timeout)
    member_timeouts = [
        getattr(getattr(member, "config", None), "timeout_s", None)
        for member in getattr(backend, "endpoints", None) or ()
    ]
    member_timeouts = [t for t in member_timeouts if isinstance(t, (int, float))]
    if member_timeouts:
        return float(max(member_timeouts))
    return None


class _HttpFail(Exception):
    """Internal: abort request processing with a specific HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _json_headers(length: Optional[int] = None,
                  retry_after: bool = False) -> Dict[str, str]:
    headers = {"Content-Type": "application/json; charset=utf-8"}
    if length is not None:
        headers["Content-Length"] = str(length)
    if retry_after:
        headers["Retry-After"] = "1"
    return headers


def _failure(status: int, message: str) -> Tuple[int, Dict[str, str], bytes, int]:
    """A finished error response as the ``_handle_query`` result tuple."""
    return status, _json_headers(retry_after=status == 503), _error_body(
        status, message), 0


def _error_body(status: int, message: str) -> bytes:
    """The JSON error document used for every non-200 response."""
    return json.dumps(
        {"error": {"status": status, "message": message}}
    ).encode("utf-8")
