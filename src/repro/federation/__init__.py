"""FedX-style federated query processing over simulated endpoints."""

from .fedx import FederatedQueryProcessor

__all__ = ["FederatedQueryProcessor"]
