"""FedX-style federated query processing as a thin planner client.

Sapphire fronts one or more SPARQL endpoints with a federated query
processor (the paper uses FedX [22]).  Since the query engine grew an
explicit pipeline — parse → logical algebra → optimize → physical
execution — federation is no longer a separate evaluator: this module
translates and normalizes queries through the *same*
:mod:`~repro.sparql.algebra` stage as local execution (so duplicate
patterns are deduplicated once, filters are pushed once), runs the same
greedy cost-ranked join ordering, and compiles to the remote physical
operators in :mod:`~repro.sparql.plan`:

1. **Cost-based source selection** — each triple pattern is probed with
   an ASK query at every member endpoint (cached by pattern signature);
   surviving sources are *ranked* by per-predicate statistics: members
   that expose a local store contribute
   :meth:`~repro.store.TripleStore.predicate_stats` counts, network
   members a pessimistic default.
2. **Exclusive groups** — patterns whose only relevant source is the
   same single endpoint ship to it as one sub-query
   (:class:`~repro.sparql.plan.RemoteScanNode` over the whole group).
3. **Batched bind joins** — remaining patterns join through
   :class:`~repro.sparql.plan.RemoteBindJoinNode`, which sends one
   ``VALUES``-constrained request per endpoint per batch of
   ``bind_join_batch_size`` bindings instead of one request per
   binding.
4. UNION / MINUS / VALUES compile to the same ID-space operators local
   execution uses; remote terms are interned into a per-query mediator
   store so everything joins on integers.

Solution modifiers (DISTINCT/GROUP BY/ORDER/LIMIT/aggregates) run at
the mediator by reusing the local evaluator's pipeline, and
:meth:`FederatedQueryProcessor.explain` renders the same operator-tree
EXPLAIN the rest of the system uses.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..endpoint.endpoint import EndpointError, SparqlEndpoint
from ..rdf.terms import IRI, Term, Variable
from ..rdf.triples import Binding, TriplePattern
from ..sparql.algebra import (
    AlgebraNode,
    BGP,
    Empty,
    Join as LogicalJoin,
    LeftJoin as LogicalLeftJoin,
    Minus as LogicalMinus,
    Union as LogicalUnion,
    ValuesTable,
    conjuncts,
    normalize,
    translate_group,
)
from ..sparql.ast_nodes import GraphPattern, Query, ValuesClause
from ..sparql.errors import SparqlError
from ..sparql.evaluator import QueryEvaluator, _merge_compatible
from ..sparql.parser import parse_query
from ..sparql.plan import (
    CompatJoinNode,
    HashJoinNode,
    LeftJoinNode,
    MinusNode,
    PlanNode,
    REMOTE_BATCH_SIZE,
    RemoteBindJoinNode,
    RemoteScanNode,
    UnionNode,
    ValuesScanNode,
    explain_plan,
)
from ..sparql.results import AskResult, SelectResult
from ..sparql.serializer import ask_query
from ..sparql.trace import QueryTrace, Tracer
from ..store.triplestore import TripleStore

__all__ = ["FederatedQueryProcessor"]

#: Cardinality assumed for a pattern at an endpoint that exposes no
#: statistics (network members): pessimistic enough that a pattern
#: backed by local stats usually wins the driver position.
DEFAULT_REMOTE_CARDINALITY = 1000


def _pattern_signature(pattern: TriplePattern) -> Tuple:
    """Cache key for source selection: variables are wildcards."""

    def part(term: Term):
        return None if isinstance(term, Variable) else term

    return (part(pattern.subject), part(pattern.predicate), part(pattern.object))


def _generalize(pattern: TriplePattern) -> TriplePattern:
    """Replace every variable with a fresh one for probing purposes."""
    counter = iter(range(3))

    def wildcard(term: Term) -> Term:
        if isinstance(term, Variable):
            return Variable(f"probe{next(counter)}")
        return term

    return TriplePattern(
        wildcard(pattern.subject), wildcard(pattern.predicate), wildcard(pattern.object)
    )


class FederatedQueryProcessor:
    """Evaluates SPARQL queries across a federation of endpoints.

    Members need only the endpoint query surface (``select``/``ask``
    raising :class:`EndpointError` subclasses) — in-process
    :class:`SparqlEndpoint` instances and network-backed
    :class:`~repro.net.client.HttpSparqlEndpoint` instances mix freely.

    ``bind_join_batch_size`` controls how many accumulated bindings a
    federated join ships per request (1 degenerates to the classic
    per-binding nested loop; the default batches
    :data:`~repro.sparql.plan.REMOTE_BATCH_SIZE` bindings into a single
    VALUES clause).

    Thread-safe source selection: the HTTP server evaluates federated
    queries from many handler threads at once, so the pattern-source
    cache is guarded by a lock (probes run outside it — a duplicated
    probe is cheaper than serializing all endpoints' probes).  Each
    query execution interns remote terms into its own mediator store,
    so concurrent queries never share mutable ID state.
    """

    def __init__(
        self,
        endpoints: Sequence[SparqlEndpoint],
        bind_join_batch_size: int = REMOTE_BATCH_SIZE,
    ) -> None:
        if not endpoints:
            raise ValueError("a federation needs at least one endpoint")
        if bind_join_batch_size < 1:
            raise ValueError("bind_join_batch_size must be >= 1")
        self.endpoints = list(endpoints)
        self.bind_join_batch_size = bind_join_batch_size
        self._source_cache: Dict[Tuple, List[SparqlEndpoint]] = {}
        self._cache_lock = threading.Lock()
        self._stats_cache: Dict[int, Optional[Dict]] = {}
        # The mediator pipeline (aggregation, ordering, projection) comes
        # from the local evaluator; it never touches this empty store.
        self._pipeline = QueryEvaluator(TripleStore())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def select(self, query_text: str) -> SelectResult:
        """Run a SELECT query across the federation."""
        query = parse_query(query_text)
        if query.form != "SELECT":
            raise SparqlError("use ask() for ASK queries")
        return self._evaluate(query)

    def ask(self, query_text: str) -> AskResult:
        query = parse_query(query_text)
        if query.form != "ASK":
            raise SparqlError("use select() for SELECT queries")
        for _ in self._solve(query.where):
            return AskResult(True)
        return AskResult(False)

    def run(self, query, tracer: Optional[Tracer] = None):
        """Run a parsed or textual query of either form.

        ``tracer`` (optional) records per-operator spans, with one
        remote span per endpoint round — the federated half of the
        distributed trace a downstream endpoint continues via the
        ``X-Repro-Trace-Id`` header.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.form == "ASK":
            for _ in self._solve(parsed.where, tracer):
                return AskResult(True)
            return AskResult(False)
        return self._evaluate(parsed, tracer)

    def analyze(
        self, query, tracer: Optional[Tracer] = None
    ) -> "tuple[SelectResult | AskResult, QueryTrace]":
        """EXPLAIN ANALYZE across the federation: execute ``query``
        under a tracer and return ``(result, trace)``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if tracer is None:
            tracer = Tracer(query=query if isinstance(query, str) else "")
        result = self.run(parsed, tracer=tracer)
        return result, tracer.finish()

    def explain(self, query, analyze: bool = False) -> str:
        """Render the federated physical plan for ``query`` — the same
        operator-tree EXPLAIN as local execution, preceded by the
        source-selection verdicts (probing runs, execution does not
        unless ``analyze=True``, which appends the execution trace).
        """
        if analyze:
            from ..eval.reporting import format_trace

            plan_text = self.explain(query)
            _, trace = self.analyze(query)
            return f"{plan_text}\n\n{format_trace(trace)}"
        parsed = parse_query(query) if isinstance(query, str) else query
        store = TripleStore()
        plan = self._compile_group(parsed.where, store)
        lines = [f"Federated {self._pipeline._explain_header(parsed)}"]
        lines.append("sources:")
        for pattern in self._collect_patterns(parsed.where):
            sources = self.relevant_sources(pattern)
            names = ", ".join(endpoint.name for endpoint in sources) or "(none)"
            estimate = self._pattern_estimate(pattern, sources)
            lines.append(
                "  " + " ".join(term.n3() for term in pattern.as_tuple())
                + f"  ->  {names}  [est={estimate}]"
            )
        lines.append("plan:")
        lines.append(explain_plan(plan, indent=1))
        for optional in parsed.where.optionals:
            lines.append("optional (per base solution):")
            lines.append(explain_plan(self._compile_group(optional, store), indent=1))
        return "\n".join(lines)

    def invalidate_source_cache(self) -> None:
        with self._cache_lock:
            self._source_cache.clear()
            self._stats_cache.clear()

    # ------------------------------------------------------------------
    # Source selection
    # ------------------------------------------------------------------

    def relevant_sources(self, pattern: TriplePattern) -> List[SparqlEndpoint]:
        """Endpoints that may hold matches for ``pattern`` (ASK probes)."""
        signature = _pattern_signature(pattern)
        with self._cache_lock:
            cached = self._source_cache.get(signature)
        if cached is not None:
            return cached
        probe = ask_query([_generalize(pattern)])
        relevant: List[SparqlEndpoint] = []
        for endpoint in self.endpoints:
            try:
                if endpoint.ask(probe):
                    relevant.append(endpoint)
            except EndpointError:
                # An endpoint that cannot answer the probe stays a
                # candidate: dropping it could lose answers.
                relevant.append(endpoint)
        with self._cache_lock:
            # Two threads may have probed the same signature; the first
            # write wins so every caller sees one stable source list.
            return self._source_cache.setdefault(signature, relevant)

    def _endpoint_stats(self, endpoint) -> Optional[Dict]:
        """Cached ``predicate_stats()`` for members with a local store
        (None for network members, whose statistics are invisible)."""
        key = id(endpoint)
        with self._cache_lock:
            if key in self._stats_cache:
                return self._stats_cache[key]
        store = getattr(endpoint, "store", None)
        stats = store.predicate_stats() if store is not None else None
        with self._cache_lock:
            return self._stats_cache.setdefault(key, stats)

    def _pattern_estimate(
        self, pattern: TriplePattern, sources: Sequence[SparqlEndpoint]
    ) -> int:
        """Federated cardinality estimate: sum of per-source estimates."""
        total = 0
        for endpoint in sources:
            stats = self._endpoint_stats(endpoint)
            if stats is None:
                total += DEFAULT_REMOTE_CARDINALITY
                continue
            predicate = pattern.predicate
            if not isinstance(predicate, IRI):
                total += sum(stat.count for stat in stats.values())
                continue
            stat = stats.get(predicate)
            if stat is None:
                continue  # the probe said maybe, the stats say no rows
            estimate = stat.count
            if not isinstance(pattern.subject, Variable):
                estimate = max(1, estimate // max(stat.distinct_subjects, 1))
            if not isinstance(pattern.object, Variable):
                estimate = max(1, estimate // max(stat.distinct_objects, 1))
            total += estimate
        return max(total, 1)

    def _distinct_estimate(
        self, pattern: TriplePattern, name: str, sources: Sequence[SparqlEndpoint]
    ) -> int:
        """Distinct values of ``name`` within ``pattern`` across sources."""
        total = 0
        for endpoint in sources:
            stats = self._endpoint_stats(endpoint)
            if stats is None or not isinstance(pattern.predicate, IRI):
                return 0  # unknown
            stat = stats.get(pattern.predicate)
            if stat is None:
                continue
            if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
                total += stat.distinct_subjects
            elif isinstance(pattern.object, Variable) and pattern.object.name == name:
                total += stat.distinct_objects
            else:
                return 0
        return total

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _evaluate(
        self, query: Query, tracer: Optional[Tracer] = None
    ) -> SelectResult:
        solutions = list(self._solve(query.where, tracer))
        return self._finalize(query, solutions)

    def _finalize(self, query: Query, solutions: List[Binding]) -> SelectResult:
        """Solution modifiers at the mediator, via the shared pipeline
        tail (ORDER BY sees pre-projection solutions, as locally)."""
        from ..sparql.evaluator import finalize_solutions

        return finalize_solutions(self._pipeline, query, solutions)

    def _solve(
        self, group: GraphPattern, tracer: Optional[Tracer] = None
    ) -> Iterator[Binding]:
        """Execute one group across the federation: compile, stream the
        plan over a fresh mediator store, apply OPTIONALs per solution.
        """
        store = TripleStore()
        plan = self._compile_group(group, store)
        decode = store.decode_id
        names = plan.variables
        base = (
            {
                name: decode(term_id)
                for name, term_id in zip(names, row)
                if term_id is not None
            }
            for row in plan.rows(store, None, tracer=tracer)
        )
        if not group.optionals:
            yield from base
            return
        for solution in base:
            current = [solution]
            for optional in group.optionals:
                extended: List[Binding] = []
                for row in current:
                    matches = self._solve_optional(optional, row)
                    extended.extend(matches if matches else [row])
                current = extended
            yield from current

    def _solve_optional(
        self, optional: GraphPattern, solution: Binding
    ) -> List[Binding]:
        """One OPTIONAL extension for one base solution.

        The base solution's bindings flow into the optional group as
        injected single-row VALUES tables covering the referenced
        variables — recursively, so filters and patterns nested in the
        optional's own UNION branches and OPTIONALs see the outer
        bindings too (matching the local evaluator's correlated
        semantics).  The same planner then handles the correlation; no
        separate join code.
        """
        bound = self._bind_group(optional, solution)
        merged: List[Binding] = []
        for row in self._solve(bound):
            combined = _merge_compatible(solution, row)
            if combined is not None:
                merged.append(combined)
        return merged

    def _bind_group(self, group: GraphPattern, solution: Binding) -> GraphPattern:
        """Copy ``group`` with the solution's bindings pinned at every
        level that references them (a single-row VALUES table per
        level).  MINUS groups stay untouched: SPARQL MINUS is
        uncorrelated, and the local evaluator agrees."""
        bound = GraphPattern(
            patterns=list(group.patterns),
            filters=list(group.filters),
            optionals=[self._bind_group(o, solution) for o in group.optionals],
            unions=[
                [self._bind_group(branch, solution) for branch in branches]
                for branches in group.unions
            ],
            minuses=list(group.minuses),
            values=list(group.values),
        )
        referenced = set()
        for pattern in group.patterns:
            referenced.update(pattern.variables())
        for expr in group.filters:
            referenced.update(expr.variables())
        shared = tuple(name for name in referenced if name in solution)
        if shared:
            bound.values.append(
                ValuesClause(shared, (tuple(solution[name] for name in shared),))
            )
        return bound

    # ------------------------------------------------------------------
    # Planning (stage three, federated flavour)
    # ------------------------------------------------------------------

    def _compile_group(self, group: GraphPattern, store: TripleStore) -> PlanNode:
        """Compile one group (OPTIONALs excluded) to a remote plan."""
        root = normalize(translate_group(group, include_optionals=False))
        return self._compile(root, store)

    def _compile(self, node: AlgebraNode, store: TripleStore) -> PlanNode:
        from ..sparql.plan import _strip_filters

        filters, core = _strip_filters(node)
        plan = self._compile_core(core, store)
        plan.filters.extend(filters)
        return plan

    def _compile_core(self, core: AlgebraNode, store: TripleStore) -> PlanNode:
        if isinstance(core, Empty):
            return ValuesScanNode(store, (), ())
        if isinstance(core, BGP):
            if not core.patterns:
                return ValuesScanNode(store, (), ((),))  # the unit table
            return self._compile_conjunction([core], store)
        if isinstance(core, ValuesTable):
            # The mediator store is fresh and private to this query
            # execution, so interning inline terms there is safe.
            return ValuesScanNode(store, core.names, core.rows, intern=True)
        if isinstance(core, LogicalUnion):
            return UnionNode([self._compile(branch, store) for branch in core.branches])
        if isinstance(core, LogicalMinus):
            return MinusNode(
                self._compile(core.left, store), self._compile(core.right, store)
            )
        if isinstance(core, LogicalLeftJoin):
            # An OPTIONAL nested inside a UNION/MINUS branch: no base
            # solution exists to correlate on, so it runs as the
            # uncorrelated SPARQL LeftJoin algebra.
            left = self._compile(core.left, store)
            return LeftJoinNode(left, self._compile(core.right, store), left.est_rows)
        if isinstance(core, LogicalJoin):
            return self._compile_conjunction(conjuncts(core), store)
        raise SparqlError(f"federation cannot compile {core.label()}")

    def _compile_conjunction(
        self, parts: List[AlgebraNode], store: TripleStore
    ) -> PlanNode:
        """Greedy left-deep federated join.

        The same ordering discipline as local planning — start from the
        most selective input, repeatedly add the connected input with
        the smallest estimated join output — with remote operators:
        exclusive groups and driver patterns become RemoteScanNodes,
        every subsequent pattern a batched RemoteBindJoinNode, and
        non-pattern inputs (VALUES/UNION sub-plans) hash- or
        compat-join at the mediator.
        """
        from ..sparql.plan import _strip_filters

        patterns: List[TriplePattern] = []
        pending = []
        leaves: List[PlanNode] = []
        for part in parts:
            part_filters, part_core = _strip_filters(part)
            if isinstance(part_core, BGP):
                patterns.extend(part_core.patterns)
                pending.extend(part_filters)
            else:
                leaf = self._compile_core(part_core, store)
                leaf.filters.extend(part_filters)
                leaves.append(leaf)
        patterns = list(dict.fromkeys(patterns))

        sources_of: Dict[TriplePattern, List[SparqlEndpoint]] = {
            pattern: self.relevant_sources(pattern) for pattern in patterns
        }

        # Exclusive groups: patterns whose single relevant source is the
        # same endpoint ship together as one sub-query.
        remaining: List[TriplePattern] = []
        exclusive: Dict[int, List[TriplePattern]] = {}
        for pattern in patterns:
            sources = sources_of[pattern]
            if len(sources) == 1:
                exclusive.setdefault(id(sources[0]), []).append(pattern)
            else:
                remaining.append(pattern)
        candidates: List[PlanNode] = list(leaves)
        for grouped in exclusive.values():
            if len(grouped) == 1:
                remaining.append(grouped[0])
                continue
            sources = sources_of[grouped[0]]
            estimate = min(
                self._pattern_estimate(pattern, sources) for pattern in grouped
            )
            candidates.append(RemoteScanNode(grouped, sources, estimate))

        pattern_nodes: Dict[int, TriplePattern] = {}
        for pattern in remaining:
            scan = RemoteScanNode(
                [pattern],
                sources_of[pattern],
                self._pattern_estimate(pattern, sources_of[pattern]),
            )
            pattern_nodes[id(scan)] = pattern
            candidates.append(scan)

        if not candidates:
            return ValuesScanNode(store, (), ((),))

        node = min(candidates, key=lambda c: c.est_rows)
        candidates.remove(node)
        self._attach_filters(node, pending)

        while candidates:
            connected = [
                candidate for candidate in candidates
                if any(name in node.slot_of for name in candidate.variables)
            ]
            if not connected:
                # Disconnected inputs cross-join at the mediator: one
                # fetch per input (a keyless bind join would re-issue
                # the same unconstrained sub-query once per batch).
                best = min(candidates, key=lambda c: c.est_rows)
                candidates.remove(best)
                self._attach_filters(best, pending)
                node = HashJoinNode(
                    node, best, (), max(1, node.est_rows) * max(1, best.est_rows)
                )
                self._attach_filters(node, pending)
                continue
            best = min(
                connected, key=lambda c: self._join_estimate(node, c, pattern_nodes)
            )
            candidates.remove(best)
            estimate = self._join_estimate(node, best, pattern_nodes)
            pattern = pattern_nodes.get(id(best))
            if pattern is not None:
                node = RemoteBindJoinNode(
                    node,
                    pattern,
                    sources_of[pattern],
                    estimate,
                    batch_size=self.bind_join_batch_size,
                )
            else:
                keys = tuple(
                    name for name in best.variables if name in node.slot_of
                )
                unsafe = any(
                    name in node.maybe_unbound or name in best.maybe_unbound
                    for name in keys
                )
                self._attach_filters(best, pending)
                if unsafe:
                    node = CompatJoinNode(node, best, estimate)
                else:
                    node = HashJoinNode(node, best, keys, estimate)
            self._attach_filters(node, pending)
        node.filters.extend(pending)
        return node

    def _join_estimate(
        self,
        left: PlanNode,
        candidate: PlanNode,
        pattern_nodes: Dict[int, TriplePattern],
    ) -> int:
        shared = [name for name in candidate.variables if name in left.slot_of]
        if not shared:
            return max(1, left.est_rows) * max(1, candidate.est_rows)
        pattern = pattern_nodes.get(id(candidate))
        if pattern is None:
            return max(left.est_rows, candidate.est_rows)
        distinct = 0
        for name in shared:
            distinct = max(
                distinct,
                self._distinct_estimate(pattern, name, self.relevant_sources(pattern)),
            )
        if distinct <= 0:
            distinct = max(candidate.est_rows, 1)
        return max(1, left.est_rows * candidate.est_rows // distinct)

    @staticmethod
    def _attach_filters(node: PlanNode, pending: List) -> None:
        """Shared with the local planner: attaches only filters whose
        variables are certainly bound (a maybe-unbound variable could
        still be filled by a later compatibility join)."""
        from ..sparql.plan import attach_ready_filters

        attach_ready_filters(node, pending)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------

    def _collect_patterns(self, group: GraphPattern) -> List[TriplePattern]:
        """Every triple pattern a group mentions, deduplicated (the
        EXPLAIN source-selection table)."""
        found: List[TriplePattern] = list(group.patterns)
        for branches in group.unions:
            for branch in branches:
                found.extend(self._collect_patterns(branch))
        for minus in group.minuses:
            found.extend(self._collect_patterns(minus))
        for optional in group.optionals:
            found.extend(self._collect_patterns(optional))
        return list(dict.fromkeys(found))
