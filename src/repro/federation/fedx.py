"""FedX-style federated query processor.

Sapphire fronts one or more SPARQL endpoints with a federated query
processor (the paper uses FedX [22]).  This module implements the three
FedX ideas that matter at our scale:

1. **Source selection** — before evaluation, each triple pattern is probed
   with an ASK query at every member endpoint; only endpoints that answer
   ``true`` are considered *relevant* for that pattern.  Probe results are
   cached by pattern signature so repeated queries don't re-probe.
2. **Exclusive groups** — maximal sets of patterns whose only relevant
   source is the same single endpoint are shipped to that endpoint as one
   sub-query instead of being joined pattern-by-pattern.
3. **Bound joins** — remaining patterns are evaluated left-to-right; the
   processor substitutes the bindings produced so far into the pattern
   before sending it, so each remote request is selective.

Solution modifiers (DISTINCT/GROUP BY/ORDER/LIMIT/aggregates) run at the
mediator by reusing the local evaluator's pipeline.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Sequence, Tuple

from ..endpoint.endpoint import EndpointError, SparqlEndpoint
from ..rdf.terms import Term, Variable, is_concrete
from ..rdf.triples import Binding, TriplePattern
from ..sparql.ast_nodes import GraphPattern, Query
from ..sparql.errors import SparqlError
from ..sparql.evaluator import QueryEvaluator, _assign_filters, _filter_passes
from ..sparql.parser import parse_query
from ..sparql.results import AskResult, SelectResult
from ..sparql.serializer import ask_query, select_query
from ..store.triplestore import TripleStore

__all__ = ["FederatedQueryProcessor"]


def _pattern_signature(pattern: TriplePattern) -> Tuple:
    """Cache key for source selection: variables are wildcards."""

    def part(term: Term):
        return None if isinstance(term, Variable) else term

    return (part(pattern.subject), part(pattern.predicate), part(pattern.object))


class FederatedQueryProcessor:
    """Evaluates SPARQL queries across a federation of endpoints.

    Members need only the endpoint query surface (``select``/``ask``
    raising :class:`EndpointError` subclasses) — in-process
    :class:`SparqlEndpoint` instances and network-backed
    :class:`~repro.net.client.HttpSparqlEndpoint` instances mix freely.

    Thread-safe source selection: the HTTP server evaluates federated
    queries from many handler threads at once, so the pattern-source
    cache is guarded by a lock (probes run outside it — a duplicated
    probe is cheaper than serializing all endpoints' probes).
    """

    def __init__(self, endpoints: Sequence[SparqlEndpoint]) -> None:
        if not endpoints:
            raise ValueError("a federation needs at least one endpoint")
        self.endpoints = list(endpoints)
        self._source_cache: Dict[Tuple, List[SparqlEndpoint]] = {}
        self._cache_lock = threading.Lock()
        # The mediator pipeline (aggregation, ordering, projection) comes
        # from the local evaluator; it never touches this empty store.
        self._mediator = QueryEvaluator(TripleStore())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def select(self, query_text: str):
        """Run a SELECT query across the federation."""
        query = parse_query(query_text)
        if query.form != "SELECT":
            raise SparqlError("use ask() for ASK queries")
        return self._evaluate(query)

    def ask(self, query_text: str) -> AskResult:
        query = parse_query(query_text)
        if query.form != "ASK":
            raise SparqlError("use select() for SELECT queries")
        for _ in self._solve(query.where, {}):
            return AskResult(True)
        return AskResult(False)

    def run(self, query):
        """Run a parsed or textual query of either form."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if parsed.form == "ASK":
            for _ in self._solve(parsed.where, {}):
                return AskResult(True)
            return AskResult(False)
        return self._evaluate(parsed)

    def invalidate_source_cache(self) -> None:
        with self._cache_lock:
            self._source_cache.clear()

    # ------------------------------------------------------------------
    # Source selection
    # ------------------------------------------------------------------

    def relevant_sources(self, pattern: TriplePattern) -> List[SparqlEndpoint]:
        """Endpoints that may hold matches for ``pattern`` (ASK probes)."""
        signature = _pattern_signature(pattern)
        with self._cache_lock:
            cached = self._source_cache.get(signature)
        if cached is not None:
            return cached
        probe = ask_query([_generalize(pattern)])
        relevant: List[SparqlEndpoint] = []
        for endpoint in self.endpoints:
            try:
                if endpoint.ask(probe):
                    relevant.append(endpoint)
            except EndpointError:
                # An endpoint that cannot answer the probe stays a
                # candidate: dropping it could lose answers.
                relevant.append(endpoint)
        with self._cache_lock:
            # Two threads may have probed the same signature; the first
            # write wins so every caller sees one stable source list.
            return self._source_cache.setdefault(signature, relevant)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, query: Query) -> SelectResult:
        solutions = list(self._solve(query.where, {}))
        # Reuse the local pipeline for aggregation/projection/modifiers.
        pipeline = Query(
            form="SELECT",
            select_items=query.select_items,
            select_star=query.select_star,
            distinct=query.distinct,
            where=query.where,
            group_by=query.group_by,
            order_by=query.order_by,
            limit=query.limit,
            offset=query.offset,
        )
        return self._finalize(pipeline, solutions)

    def _finalize(self, query: Query, solutions: List[Binding]) -> SelectResult:
        evaluator = self._mediator
        if query.has_aggregates() or query.group_by:
            rows = evaluator._aggregate(query, solutions)
        else:
            rows = solutions
        # As in the local evaluator: ORDER BY sees pre-projection solutions.
        if query.order_by:
            rows = evaluator._order(rows, query.order_by)
        names = query.projected_names()
        if not query.has_aggregates():
            rows = [evaluator._project(row, query, names) for row in rows]
        if query.distinct:
            from ..sparql.evaluator import _distinct

            rows = _distinct(rows, names)
        offset = query.offset or 0
        if offset:
            rows = rows[offset:]
        if query.limit is not None:
            rows = rows[: query.limit]
        return SelectResult(variables=names, rows=rows)

    def _solve(self, group: GraphPattern, initial: Binding) -> Iterator[Binding]:
        """Bound-join evaluation of a graph pattern across the federation."""
        patterns = list(group.patterns)
        filters = list(group.filters)
        if not patterns:
            base: List[Binding] = [dict(initial)] if all(
                _filter_passes(f, initial) for f in filters
            ) else []
            yield from self._with_optionals(group, base)
            return

        order = self._order_patterns(patterns, set(initial.keys()))
        filter_positions = _assign_filters(order, filters, set(initial.keys()))

        def backtrack(index: int, binding: Binding) -> Iterator[Binding]:
            for expr in filter_positions.get(index, ()):
                if not _filter_passes(expr, binding):
                    return
            if index == len(order):
                yield binding
                return
            pattern = order[index].bind(binding)
            for extension in self._fetch(pattern):
                merged = dict(binding)
                merged.update(extension)
                yield from backtrack(index + 1, merged)

        yield from self._with_optionals(group, backtrack(0, dict(initial)))

    def _with_optionals(self, group: GraphPattern, base) -> Iterator[Binding]:
        if not group.optionals:
            yield from base
            return
        for solution in base:
            current = [solution]
            for optional in group.optionals:
                extended: List[Binding] = []
                for row in current:
                    matches = list(self._solve(optional, row))
                    extended.extend(matches if matches else [row])
                current = extended
            yield from current

    def _fetch(self, pattern: TriplePattern) -> Iterator[Binding]:
        """Retrieve solutions for one (possibly bound) pattern."""
        sources = self.relevant_sources(pattern)
        sub_query = select_query([pattern], distinct=False)
        seen = set()
        for endpoint in sources:
            try:
                result = endpoint.select(sub_query)
            except EndpointError:
                continue
            names = pattern.variables()
            for row in result.rows:
                extension = {name: row[name] for name in names if name in row}
                key = tuple(extension.get(name) for name in names)
                if key in seen:
                    continue
                seen.add(key)
                yield extension
        if not pattern.variables():
            # Fully bound pattern: existence check.
            for endpoint in sources:
                try:
                    if endpoint.ask(ask_query([pattern])):
                        yield {}
                        return
                except EndpointError:
                    continue

    def _order_patterns(
        self, patterns: List[TriplePattern], bound: set
    ) -> List[TriplePattern]:
        """Heuristic join order: most-constant patterns first, then chain
        through shared variables so bound joins stay selective."""
        remaining = list(patterns)
        ordered: List[TriplePattern] = []
        bound_now = set(bound)

        def score(pattern: TriplePattern) -> Tuple[int, int]:
            constants = sum(1 for t in pattern.as_tuple() if is_concrete(t))
            shared = len(set(pattern.variables()) & bound_now)
            return (-(constants + shared), len(pattern.variables()))

        while remaining:
            best = min(range(len(remaining)), key=lambda i: score(remaining[i]))
            chosen = remaining.pop(best)
            ordered.append(chosen)
            bound_now.update(chosen.variables())
        return ordered


def _generalize(pattern: TriplePattern) -> TriplePattern:
    """Replace every variable with a fresh one for probing purposes."""
    counter = iter(range(3))

    def wildcard(term: Term) -> Term:
        if isinstance(term, Variable):
            return Variable(f"probe{next(counter)}")
        return term

    return TriplePattern(
        wildcard(pattern.subject), wildcard(pattern.predicate), wildcard(pattern.object)
    )
