"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro.cli stats                 # dataset + cache summary
    python -m repro.cli complete Kenn         # QCM suggestions
    python -m repro.cli complete Kenn --url http://host:8890   # remote QCM
    python -m repro.cli suggest 'SELECT ?w WHERE { ... }'      # QSM round
    python -m repro.cli query 'SELECT ?w WHERE { ... }'
    python -m repro.cli table1                # the Table 1 comparison
    python -m repro.cli study --participants 8
    python -m repro.cli init --save cache.json
    python -m repro.cli serve --port 8890    # SPARQL 1.1 Protocol endpoint
    python -m repro.cli serve --sapphire     # + /complete and /suggest
    python -m repro.cli replay --sessions 50 --processes 4   # load harness

Most commands stand up the synthetic dataset behind a simulated endpoint
(``--scale tiny|small|medium``, ``--seed N``) and run Section 5
initialization, exactly like :func:`repro.quickstart_server`; with
``--url`` the ``complete``/``suggest`` commands instead drive a *remote*
Sapphire over the HTTP suggestion API (``repro serve --sapphire``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import EndpointConfig, SapphireConfig, SapphireServer, SparqlEndpoint
from .data import DatasetConfig, build_dataset

__all__ = ["main", "build_parser"]

_SCALES = {
    "tiny": DatasetConfig.tiny,
    "small": DatasetConfig.small,
    "medium": DatasetConfig.medium,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sapphire reproduction: SPARQL query assistance over RDF",
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny",
                        help="synthetic dataset size (default: tiny)")
    parser.add_argument("--seed", type=int, default=42,
                        help="dataset seed (default: 42)")
    parser.add_argument("--tree-capacity", type=int, default=500,
                        help="suffix-tree capacity (default: 500)")
    parser.add_argument("--execution", choices=("auto", "planner", "backtrack"),
                        default="auto",
                        help="query evaluation strategy for local endpoints: "
                             "cost-based planner with fallback (auto, the "
                             "default), planner-first, or the seed "
                             "backtracking join (default: auto)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("stats", help="print dataset and cache statistics")

    complete = commands.add_parser("complete", help="QCM auto-completion")
    complete.add_argument("term", help="the partially typed term")
    complete.add_argument("-k", type=int, default=10, help="max suggestions")
    complete.add_argument("--url", default=None, metavar="URL",
                          help="drive a remote Sapphire over HTTP "
                               "(a 'repro serve --sapphire' base URL) "
                               "instead of building a local one")
    complete.add_argument("--session", default=None,
                          help="session token to send with --url calls")

    suggest = commands.add_parser(
        "suggest", help="run a query and print the QSM suggestion round"
    )
    suggest.add_argument("sparql", help="the query text")
    suggest.add_argument("--url", default=None, metavar="URL",
                         help="drive a remote Sapphire over HTTP instead "
                              "of building a local one")
    suggest.add_argument("--session", default=None,
                         help="session token to send with --url calls")

    query = commands.add_parser("query", help="run a SPARQL query + QSM")
    query.add_argument("sparql", help="the query text")
    query.add_argument("--no-suggest", action="store_true",
                       help="skip QSM suggestions")
    query.add_argument("--max-rows", type=int, default=20)
    query.add_argument("--explain", action="store_true",
                       help="print the query plan before the answers")
    query.add_argument("--analyze", action="store_true",
                       help="EXPLAIN ANALYZE: execute under an operator "
                            "tracer and print the span tree (per-operator "
                            "wall time, rows, est→actual) after the answers")
    query.add_argument("--format", choices=("table", "json", "csv", "tsv", "xml"),
                       default="table",
                       help="result format: the human table (default) or a "
                            "W3C SPARQL results serialization (machine "
                            "formats imply --no-suggest)")

    explain = commands.add_parser(
        "explain", help="show the query plan without executing the query"
    )
    explain.add_argument("sparql", help="the query text")
    explain.add_argument("--analyze", action="store_true",
                         help="also execute the query and append the "
                              "measured operator trace to the plan dump")
    explain.add_argument("--probes", action="store_true",
                         help="also show the QSM's batched VALUES probe "
                              "queries and their federated plans")

    commands.add_parser("table1", help="run the Table 1 system comparison")

    study = commands.add_parser("study", help="run the simulated user study")
    study.add_argument("--participants", type=int, default=16)
    study.add_argument("--study-seed", type=int, default=7)

    init = commands.add_parser("init", help="initialize and optionally save the cache")
    init.add_argument("--save", metavar="PATH", default=None,
                      help="persist the cache to PATH (SQLite v3 with the "
                           "on-disk term index; loads boot tiered replicas "
                           "without rebuilding)")
    init.add_argument("--term-index", choices=("auto", "fts", "trigram", "off"),
                      default="auto",
                      help="substring index built into the saved cache file: "
                           "FTS5 trigram when available (auto, the default), "
                           "forced fts/trigram, or off for a v2 file "
                           "(default: auto)")

    cache_info = commands.add_parser(
        "cache-info", help="inspect a persisted cache file"
    )
    cache_info.add_argument("path", help="a save_cache/--save output file")

    serve = commands.add_parser(
        "serve",
        help="serve the dataset over HTTP (SPARQL 1.1 Protocol)",
        description="Expose the synthetic dataset's endpoint at "
                    "http://HOST:PORT/sparql, with /health and /stats. "
                    "GET ?query= and both POST forms are accepted; results "
                    "negotiate between JSON, XML, CSV and TSV.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8890,
                       help="bind port, 0 for ephemeral (default: 8890)")
    serve.add_argument("--max-workers", type=int, default=8,
                       help="concurrent query executions (default: 8)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="requests allowed to wait for a worker before "
                            "503s start (default: 16)")
    serve.add_argument("--timeout-s", type=float, default=2.0,
                       help="endpoint query timeout in seconds (default: 2.0)")
    serve.add_argument("--trace-sample-rate", type=float, default=None,
                       metavar="RATE",
                       help="fraction of requests traced into the "
                            "slow-query log without analyze=true "
                            "(default: the SapphireConfig default)")
    serve.add_argument("--slow-threshold-s", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock threshold marking a traced query "
                            "slow (default: the SapphireConfig default)")
    serve.add_argument("--sapphire", action="store_true",
                       help="serve a full Sapphire server (runs Section 5 "
                            "initialization first): queries federate and "
                            "the /complete + /suggest suggestion API is "
                            "enabled")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork worker processes sharing the port; "
                            ">1 serves through a PreforkServer pool over "
                            "read-only SQLite snapshots, with a merged "
                            "/stats coordinator (default: 1)")
    serve.add_argument("--shards", type=int, default=1,
                       help="hash-partition the store across N shards by "
                            "subject ID; scatter-gather scans show up in "
                            "EXPLAIN as ShardScan nodes (default: 1)")
    serve.add_argument("--smoke", action="store_true",
                       help="boot, serve one health probe, drain, and exit "
                            "(used by CI; single-worker mode just binds "
                            "and exits)")

    replay = commands.add_parser(
        "replay",
        help="session-replay load harness against a live server",
        description="Generate a deterministic multi-user interaction "
                    "workload (keystroke /complete streams, /suggest "
                    "rounds, /sparql queries) and replay it over real "
                    "sockets, reconciling the client ledger against the "
                    "server's per-route /stats counters.  Without --url "
                    "a Sapphire server is stood up in-process on an "
                    "ephemeral port first.",
    )
    replay.add_argument("--sessions", type=int, default=50,
                        help="simulated user sessions (default: 50)")
    replay.add_argument("--processes", type=int, default=2,
                        help="client worker processes; 0 replays inline "
                             "in this process (default: 2)")
    replay.add_argument("--replay-seed", type=int, default=2016,
                        help="workload seed — same seed, byte-identical "
                             "scripts (default: 2016)")
    replay.add_argument("--pace", type=float, default=0.0,
                        help="scale scripted think-time into real sleeps "
                             "(1.0 = human cadence, 0 = as fast as "
                             "possible; default: 0)")
    replay.add_argument("--tick-s", type=float, default=0.25,
                        help="driver /stats/series sampling tick "
                             "(default: 0.25)")
    replay.add_argument("--url", default=None, metavar="URL",
                        help="replay against this running server "
                             "('repro serve --sapphire') instead of an "
                             "in-process one")
    replay.add_argument("--workers", type=int, default=1,
                        help="serve the in-process server from this many "
                             "pre-fork workers (sharded SQLite snapshots; "
                             "reconciliation runs against the merged "
                             "coordinator /stats; default: 1)")
    replay.add_argument("--shards", type=int, default=1,
                        help="shard count for the in-process server's "
                             "store (default: 1)")
    replay.add_argument("--emit-scripts", metavar="PATH", default=None,
                        help="write the generated scripts as canonical "
                             "JSON and exit without replaying")
    replay.add_argument("--json", metavar="PATH", default=None,
                        help="write the full replay report (ledger, "
                             "deltas, time series) as JSON")
    return parser


def _make_server(args) -> tuple:
    dataset = build_dataset(_SCALES[args.scale](seed=args.seed))
    endpoint = SparqlEndpoint(dataset.store, EndpointConfig(timeout_s=1.0),
                              name="dbpedia-mini", execution=args.execution)
    server = SapphireServer(SapphireConfig(
        suffix_tree_capacity=args.tree_capacity, execution=args.execution))
    server.register_endpoint(endpoint)
    return server, dataset


def _cmd_stats(args) -> int:
    server, dataset = _make_server(args)
    from .store import compute_stats

    stats = compute_stats(dataset.store)
    print(f"dataset: {stats.n_triples:,} triples, {stats.n_predicates} predicates, "
          f"{stats.n_literals:,} distinct literals, {stats.n_entities:,} entities")
    print(f"literal languages: {dict(sorted(stats.literal_language_counts.items()))}")
    report = server.reports["dbpedia-mini"]
    print(f"initialization: {report.total_queries} queries, "
          f"{report.n_timeouts} timeouts, "
          f"{report.simulated_seconds:.1f} simulated endpoint-seconds")
    for key, value in server.cache_stats().items():
        print(f"cache {key}: {value}")
    return 0


def _cmd_complete(args) -> int:
    if args.url:
        from .net import HttpSapphireClient

        client = HttpSapphireClient(args.url, session=args.session)
        result = client.complete(args.term, k=args.k)
    else:
        server, _ = _make_server(args)
        result = server.complete(args.term, k=args.k)
    if not result.completions:
        print(f"no completions for {args.term!r}")
        return 1
    source = "suffix tree" if result.tree_hit else "residual bins"
    print(f"{len(result.completions)} completions for {args.term!r} "
          f"(first hit from the {source}):")
    for completion in result.completions:
        kinds = "/".join(completion.kinds)
        print(f"  {completion.surface}   [{kinds}]")
    return 0


def _cmd_suggest(args) -> int:
    if args.url:
        from .net import HttpSapphireClient

        client = HttpSapphireClient(args.url, session=args.session)
        outcome = client.suggest(args.sparql)
    else:
        server, _ = _make_server(args)
        outcome = server.run_query(args.sparql)
    print(f"{len(outcome.answers)} answers")
    suggestions = outcome.all_suggestions
    if not suggestions:
        print("no QSM suggestions")
        return 0 if outcome.answers.rows else 1
    print("QSM suggestions:")
    for i, suggestion in enumerate(suggestions):
        print(f"  [{i}] {suggestion.message()}")
    return 0


def _cmd_explain(args) -> int:
    server, _ = _make_server(args)
    print(server.explain(args.sparql, analyze=args.analyze))
    if args.probes:
        print("\n== QSM batched probes ==")
        print(server.explain_suggestions(args.sparql))
    return 0


#: Machine formats reuse the SPARQL 1.1 Protocol writers from
#: :mod:`repro.net.formats` — the CLI and the HTTP server can never
#: disagree on a serialization.
_RESULT_WRITERS = {
    "json": "write_json",
    "csv": "write_csv",
    "tsv": "write_tsv",
    "xml": "write_xml",
}


def _cmd_query(args) -> int:
    server, _ = _make_server(args)
    machine_format = args.format != "table"
    if args.explain:
        # With a machine format on stdout the plan goes to stderr so
        # the JSON/CSV/TSV/XML stream stays parseable.
        stream = sys.stderr if machine_format else sys.stdout
        print(server.explain(args.sparql), file=stream)
        print(file=stream)
    trace = None
    if args.analyze:
        outcome, trace = server.analyze(
            args.sparql, suggest=not (args.no_suggest or machine_format)
        )
    else:
        outcome = server.run_query(
            args.sparql, suggest=not (args.no_suggest or machine_format)
        )
    if machine_format:
        from .net import formats

        writer = getattr(formats, _RESULT_WRITERS[args.format])
        rendered = writer(outcome.answers)
        print(rendered, end="" if rendered.endswith("\n") else "\n")
        if trace is not None:
            # Machine format on stdout: the trace tree goes to stderr.
            from .eval.reporting import format_trace

            print(format_trace(trace), file=sys.stderr)
        return 0 if outcome.answers.rows else 1
    print(f"{len(outcome.answers)} answers")
    from .core.answer_table import AnswerTable

    if outcome.answers.rows:
        print(AnswerTable(outcome.answers).to_text(max_rows=args.max_rows))
    if outcome.all_suggestions:
        print("\nQSM suggestions:")
        for i, suggestion in enumerate(outcome.all_suggestions):
            print(f"  [{i}] {suggestion.message()}")
    if trace is not None:
        from .eval.reporting import format_trace

        print(f"\n{format_trace(trace)}")
    return 0 if outcome.answers.rows else 1


def _cmd_table1(args) -> int:
    server, dataset = _make_server(args)
    from .eval import format_table, run_comparison

    comparison = run_comparison(server, dataset.store)
    print(format_table(comparison.table_rows(include_published=True),
                       "Table 1 — QALD-style comparison"))
    return 0


def _cmd_study(args) -> int:
    server, dataset = _make_server(args)
    from .baselines import QAKiS
    from .data.corpus import RELATIONAL_PATTERNS
    from .eval import UserStudy, format_grouped_bars

    qakis = QAKiS(dataset.store, RELATIONAL_PATTERNS)
    results = UserStudy(server, qakis, n_participants=args.participants,
                        seed=args.study_seed).run()
    groups = {
        d: {"QAKiS": results.success_rate("qakis", d),
            "Sapphire": results.success_rate("sapphire", d)}
        for d in ("easy", "medium", "difficult")
    }
    print(format_grouped_bars(groups, "Figure 8 — success rate (%)", unit="%"))
    usage = results.qsm_usage()
    print("\nQSM usage: " + ", ".join(f"{k} {v:.0f}%" for k, v in usage.items()))
    return 0


def _cmd_init(args) -> int:
    server, _ = _make_server(args)
    report = server.reports["dbpedia-mini"]
    print(f"initialized: {report.total_queries} queries, "
          f"{report.n_timeouts} timeouts")
    print(f"cache: {server.cache_stats()}")
    if args.save:
        from .core.persistence import save_cache

        server.cache.config = server.cache.config.with_term_index(
            args.term_index)
        info = save_cache(server.cache, args.save)
        print(f"cache written to {args.save} "
              f"(v{info['version']}, index "
              f"{'fts5' if info['fts'] else 'trigram' if info['version'] == 3 else 'none'}, "
              f"built in {info['built_s']:.3f}s)")
    return 0


def _cmd_cache_info(args) -> int:
    """Inspect a persisted cache: version, index tier, size gauges."""
    import os

    from .core.persistence import load_cache

    cache = load_cache(args.path)
    try:
        report = cache.load_report
        print(f"file:    {args.path} "
              f"({os.path.getsize(args.path):,} bytes)")
        print(f"load:    {report.get('mode')} "
              f"in {report.get('seconds', 0.0):.3f}s")
        print(f"stats:   {cache.stats()}")
        gauges = cache.index_gauges()
        if gauges.get("index_surfaces"):
            backend = "fts5" if gauges.get("index_fts") else "trigram"
            print(f"index:   {gauges['index_surfaces']:,} surfaces, "
                  f"{gauges['index_bytes']:,} bytes on disk ({backend})")
        else:
            print("index:   none (v2/JSON file — loads rebuild in memory)")
    finally:
        cache.close()
    return 0


def _serve_prefork(args) -> int:
    """``serve --workers N``: a pre-fork pool over SQLite snapshots."""
    import os
    import tempfile
    import time
    import urllib.request

    from .net import PreforkServer, build_backend_from_spec, prepare_snapshots

    spec = {
        "scale": args.scale,
        "seed": args.seed,
        "timeout_s": args.timeout_s,
        "execution": args.execution,
        "tree_capacity": args.tree_capacity,
        "sapphire": bool(args.sapphire),
        "n_shards": args.shards,
    }
    app_kwargs = {
        "max_workers": args.max_workers,
        "queue_limit": args.queue_limit,
    }
    if args.trace_sample_rate is not None:
        app_kwargs["trace_sample_rate"] = args.trace_sample_rate
    if args.slow_threshold_s is not None:
        app_kwargs["slow_query_threshold_s"] = args.slow_threshold_s
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        print(f"preparing {args.shards} SQLite snapshot shard(s) "
              f"({args.scale}, seed {args.seed}) ...")
        spec = prepare_snapshots(spec, os.path.join(tmp, "data.sqlite"))
        pool = PreforkServer(
            build_backend_from_spec, spec,
            n_workers=args.workers, host=args.host, port=args.port,
            app_kwargs=app_kwargs,
        )
        pool.start()
        try:
            pids = ", ".join(str(view["pid"]) for view in pool.workers_view())
            print(f"workers:  {args.workers} (pids {pids}), "
                  f"{args.shards} shard(s)")
            print(f"endpoint: {pool.url}")
            print(f"stats:    {pool.stats_url}/stats  (merged across workers)")
            if args.sapphire:
                root = pool.url.rsplit("/", 1)[0]
                print(f"complete: {root}/complete")
                print(f"suggest:  {root}/suggest")
            if args.smoke:
                probe = pool.url.rsplit("/", 1)[0] + "/health"
                with urllib.request.urlopen(probe, timeout=10) as response:
                    response.read()
                merged = pool.stats()
                print(f"smoke: health ok, merged /stats reached "
                      f"{merged['n_workers']} worker(s); draining")
                return 0
            print("serving — Ctrl+C to stop")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
        finally:
            pool.stop()
    return 0


def _cmd_serve(args) -> int:
    from .net import SparqlHttpServer

    if args.workers < 1 or args.shards < 1:
        print("--workers and --shards must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1:
        return _serve_prefork(args)
    dataset = build_dataset(_SCALES[args.scale](seed=args.seed))
    store = dataset.store
    if args.shards > 1:
        from .store import TripleStore, create_sharded_backend

        sharded = TripleStore(backend=create_sharded_backend(
            args.shards, "memory"))
        sharded.add_all(store.triples())
        store = sharded
    endpoint = SparqlEndpoint(
        store,
        EndpointConfig(timeout_s=args.timeout_s),
        name=f"dbpedia-{args.scale}",
        execution=args.execution,
    )
    config = SapphireConfig(suffix_tree_capacity=args.tree_capacity,
                            execution=args.execution)
    if args.sapphire:
        backend = SapphireServer(config)
        report = backend.register_endpoint(endpoint)
        print(f"initialized: {report.total_queries} queries, "
              f"cache {backend.cache_stats()}")
    else:
        backend = endpoint
    server = SparqlHttpServer(
        backend,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        queue_limit=args.queue_limit,
        trace_sample_rate=(args.trace_sample_rate
                           if args.trace_sample_rate is not None
                           else config.trace_sample_rate),
        slow_query_threshold_s=(args.slow_threshold_s
                                if args.slow_threshold_s is not None
                                else config.slow_query_threshold_s),
        slow_log_size=config.slow_log_size,
    )
    print(f"dataset: {len(dataset.store):,} triples ({args.scale}, seed {args.seed})")
    if args.shards > 1:
        print(f"shards:  {store.backend.shard_sizes()} (subject-hash)")
    print(f"endpoint: {server.url}")
    print(f"health:   http://{server.host}:{server.port}/health")
    print(f"stats:    http://{server.host}:{server.port}/stats")
    if args.sapphire:
        print(f"complete: http://{server.host}:{server.port}/complete")
        print(f"suggest:  http://{server.host}:{server.port}/suggest")
    if args.smoke:
        server.stop()
        return 0
    print("serving — Ctrl+C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.stop()
    return 0


def _cmd_replay(args) -> int:
    import contextlib
    import json as json_module

    from .eval.replay import ReplayConfig, generate_scripts, run_replay
    from .eval.reporting import format_route_series

    config = ReplayConfig(seed=args.replay_seed, n_sessions=args.sessions)
    scripts = generate_scripts(config)
    if args.emit_scripts:
        from .eval.replay import scripts_to_json

        with open(args.emit_scripts, "w", encoding="utf-8") as handle:
            handle.write(scripts_to_json(scripts, config))
        print(f"{len(scripts)} session scripts written to {args.emit_scripts}")
        return 0

    with contextlib.ExitStack() as stack:
        stats_url = None
        if args.url:
            url = args.url
        elif args.workers > 1:
            import os
            import tempfile

            from .net import (PreforkServer, build_backend_from_spec,
                              prepare_snapshots)

            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-replay-"))
            spec = prepare_snapshots({
                "scale": args.scale, "seed": args.seed, "timeout_s": 2.0,
                "execution": args.execution,
                "tree_capacity": args.tree_capacity,
                "sapphire": True, "n_shards": args.shards,
            }, os.path.join(tmp, "data.sqlite"))
            pool = PreforkServer(
                build_backend_from_spec, spec, n_workers=args.workers,
                app_kwargs={"trace_sample_rate": 0.05},
            )
            pool.start()
            stack.callback(pool.stop)
            url = pool.url
            # Reconciliation must read the coordinator's merged /stats:
            # any single worker only accounts for its share of requests.
            stats_url = pool.stats_url
            print(f"server: {url} (pre-fork, {args.workers} workers, "
                  f"{args.shards} shard(s), {args.scale} dataset)")
        else:
            from .net import SparqlHttpServer

            dataset = build_dataset(_SCALES[args.scale](seed=args.seed))
            store = dataset.store
            if args.shards > 1:
                from .store import TripleStore, create_sharded_backend

                sharded = TripleStore(backend=create_sharded_backend(
                    args.shards, "memory"))
                sharded.add_all(store.triples())
                store = sharded
            endpoint = SparqlEndpoint(
                store, EndpointConfig(timeout_s=2.0),
                name=f"dbpedia-{args.scale}",
                execution=args.execution,
            )
            backend = SapphireServer(
                SapphireConfig(suffix_tree_capacity=args.tree_capacity,
                           execution=args.execution)
            )
            backend.register_endpoint(endpoint)
            # Sample a slice of replayed requests into the slow-query
            # log so the run produces traces to report on.
            server = stack.enter_context(SparqlHttpServer(
                backend, port=0, trace_sample_rate=0.05))
            url = server.url
            print(f"server: {url} (in-process, {args.scale} dataset)")

        report = run_replay(
            scripts, url, processes=args.processes, pace=args.pace,
            tick_s=args.tick_s, stats_url=stats_url,
        )
        try:
            from .net import fetch_slow_log

            slow_log = fetch_slow_log(url)
        except Exception:  # noqa: BLE001 — pre-tracing remote servers
            slow_log = None

    ledger = report.ledger
    print(f"replayed {ledger.sessions} sessions / {ledger.attempts} requests "
          f"from {max(1, report.processes)} process(es) "
          f"in {report.wall_s:.2f}s ({report.throughput_rps:.0f} req/s)")
    for route in sorted(ledger.routes):
        counters = ledger.routes[route]
        p50 = ledger.latency[route].percentile(0.50) * 1e3
        print(f"  {route}: {counters['attempts']} attempts, "
              f"{counters['ok']} ok, {counters['rejected']} rejected, "
              f"{counters['timeouts']} timeouts, client p50 {p50:.1f}ms")
    if ledger.workers:
        spread = ", ".join(f"#{wid}: {count}"
                           for wid, count in sorted(ledger.workers.items()))
        print(f"  per-worker responses: {spread}")
    if report.mismatches:
        print("RECONCILIATION MISMATCHES:")
        for mismatch in report.mismatches:
            print(f"  {mismatch}")
    else:
        print("client/server reconciliation: clean "
              "(/stats deltas match the ledger exactly)")
    print()
    print(format_route_series(report.series))
    worst = (slow_log or {}).get("entries") or []
    if worst:
        entry = worst[0]
        print(f"\nslow-query log: {len(worst)} traced request(s), worst "
              f"{entry['wall_s'] * 1e3:.1f}ms on /{entry['route']}")
    if args.json:
        payload = report.to_dict()
        if slow_log is not None:
            payload["slow_queries"] = slow_log
            payload["worst_trace"] = worst[0]["trace"] if worst else None
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    return 1 if report.mismatches else 0


_COMMANDS = {
    "stats": _cmd_stats,
    "complete": _cmd_complete,
    "suggest": _cmd_suggest,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "table1": _cmd_table1,
    "study": _cmd_study,
    "init": _cmd_init,
    "cache-info": _cmd_cache_info,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
