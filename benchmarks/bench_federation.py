#!/usr/bin/env python3
"""Federated round-trip economics: batched bind joins over live HTTP.

Stands up **three** loopback :class:`SparqlHttpServer` instances, each
holding one slice of a star-shaped dataset (types / names / places),
and runs the same star join through two federations of
:class:`HttpSparqlEndpoint` clients:

* **batched** — the default :class:`FederatedQueryProcessor`, whose
  :class:`~repro.sparql.plan.RemoteBindJoinNode` ships every batch of
  accumulated bindings as a single ``VALUES``-constrained request;
* **per-binding** — ``bind_join_batch_size=1``, the classic nested-loop
  federation that issues one HTTP request per binding (the seed
  behaviour this PR replaces).

Gate (runs in ``--quick`` CI mode too):

* both federations and a merged single-store evaluation must return
  identical rows (zero-mismatch parity);
* the batched federation must issue **>= 5x fewer HTTP requests** than
  the per-binding one, measured both client-side (query logs) and
  server-side (``/stats`` request counters reconcile).

``--json PATH`` (via ``conftest.bench_main``) writes the machine-readable
results CI uploads as a ``BENCH_*.json`` artifact.

Run:  PYTHONPATH=src python benchmarks/bench_federation.py [--quick] [--json out.json]
"""

from __future__ import annotations

import json
import os
import time
import urllib.request
from typing import List

import pytest
from conftest import emit

from repro import EndpointConfig, FederatedQueryProcessor, SparqlEndpoint
from repro.net import HttpSparqlEndpoint, SparqlHttpServer
from repro.rdf import DBO, DBR, FOAF, Literal, RDF_TYPE, RDFS_LABEL, Triple
from repro.sparql import evaluate
from repro.store import TripleStore

#: Hub fan-out of the star: one person joins names and places per spoke.
N_PERSONS = 60
N_CITIES = 6

#: The gate: batching must cut HTTP round-trips at least this much.
MIN_REQUEST_REDUCTION = 5.0

#: The 3-endpoint star query: the hub variable ?p joins all slices.
STAR_QUERY = (
    "SELECT ?p ?n ?c WHERE { ?p a dbo:Person . ?p foaf:name ?n . "
    "?p dbo:birthPlace ?c }"
)

#: Ride-along parity shapes: the new operators across the same wire.
EXTRA_QUERIES = [
    "SELECT ?x WHERE { { ?x a dbo:Person } UNION { ?x a dbo:City } }",
    "SELECT ?p ?c WHERE { VALUES ?p { dbr:F_P0 dbr:F_P1 dbr:F_P2 } "
    "?p dbo:birthPlace ?c }",
    "SELECT ?p WHERE { ?p a dbo:Person . MINUS { ?p dbo:birthPlace dbr:F_C0 } }",
]


def build_star_slices():
    types, names, places = TripleStore(), TripleStore(), TripleStore()
    cities = [DBR.term(f"F_C{i}") for i in range(N_CITIES)]
    for i, city in enumerate(cities):
        places.add(Triple(city, RDF_TYPE, DBO.City))
        places.add(Triple(city, RDFS_LABEL, Literal(f"City {i}", lang="en")))
    for i in range(N_PERSONS):
        person = DBR.term(f"F_P{i}")
        types.add(Triple(person, RDF_TYPE, DBO.Person))
        names.add(Triple(person, FOAF.name, Literal(f"Person {i}", lang="en")))
        places.add(Triple(person, DBO.birthPlace, cities[i % N_CITIES]))
    return types, names, places


def row_key(result) -> List:
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in result.rows
    )


def fetch_requests(server) -> int:
    url = f"http://{server.host}:{server.port}/stats"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.load(response)["requests"]


@pytest.fixture(scope="module")
def stack():
    slices = build_star_slices()
    merged = TripleStore()
    for part in slices:
        merged.add_all(part.triples())
    servers = [
        SparqlHttpServer(
            SparqlEndpoint(store, EndpointConfig.warehouse(), name=name)
        ).start()
        for store, name in zip(slices, ("types", "names", "places"))
    ]
    yield servers, merged
    for server in servers:
        server.stop()


def make_federation(servers, batch_size) -> FederatedQueryProcessor:
    clients = [
        HttpSparqlEndpoint(server.url, name=f"client-{i}", timeout_s=30.0)
        for i, server in enumerate(servers)
    ]
    return FederatedQueryProcessor(clients, bind_join_batch_size=batch_size)


def run_counted(federation, servers, query):
    """Execute ``query`` (source cache pre-warmed) and count the HTTP
    requests it took, client- and server-side."""
    for client in federation.endpoints:
        client.reset_log()
    server_before = sum(fetch_requests(server) for server in servers)
    result = federation.select(query)
    client_requests = sum(client.query_count for client in federation.endpoints)
    server_requests = sum(fetch_requests(server) for server in servers) - server_before
    return result, client_requests, server_requests


def test_batched_bind_join_round_trips(stack, benchmark):
    servers, merged = stack
    batched = make_federation(servers, batch_size=30)
    per_binding = make_federation(servers, batch_size=1)

    # Warm both source caches so the counted runs are pure execution.
    batched.select(STAR_QUERY)
    per_binding.select(STAR_QUERY)

    batched_result, batched_client, batched_server = run_counted(
        batched, servers, STAR_QUERY
    )
    single_result, single_client, single_server = run_counted(
        per_binding, servers, STAR_QUERY
    )
    local_result = evaluate(merged, STAR_QUERY)

    # -- parity gate ---------------------------------------------------
    assert len(batched_result.rows) == N_PERSONS
    assert row_key(batched_result) == row_key(local_result)
    assert row_key(single_result) == row_key(local_result)

    # -- client/server reconciliation ----------------------------------
    assert batched_client == batched_server
    assert single_client == single_server

    # -- round-trip gate -----------------------------------------------
    reduction = single_client / max(batched_client, 1)
    assert reduction >= MIN_REQUEST_REDUCTION, (
        f"batched federation used {batched_client} requests vs "
        f"{single_client} per-binding — only {reduction:.1f}x better, "
        f"gate is {MIN_REQUEST_REDUCTION}x"
    )

    # -- ride-along parity for UNION/VALUES/MINUS over the same wire ---
    mismatches = [
        query for query in EXTRA_QUERIES
        if row_key(batched.select(query)) != row_key(evaluate(merged, query))
    ]
    assert mismatches == [], mismatches

    # -- timed rounds (pytest-benchmark; a single pass under --quick) --
    def timed_round():
        result = batched.select(STAR_QUERY)
        assert len(result.rows) == N_PERSONS

    started = time.perf_counter()
    benchmark(timed_round)
    elapsed = time.perf_counter() - started

    emit(
        "Federated star join — batched VALUES bind join vs per-binding",
        f"endpoints:            3 loopback HTTP servers\n"
        f"star rows:            {N_PERSONS}\n"
        f"requests (batched):   {batched_client}\n"
        f"requests (1/binding): {single_client}\n"
        f"reduction:            {reduction:.1f}x  (gate >= "
        f"{MIN_REQUEST_REDUCTION:.0f}x)\n"
        f"parity:               batched == per-binding == merged store\n"
        f"stats reconciled:     client and /stats counters agree",
    )

    json_path = os.environ.get("BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "federation",
            "endpoints": len(servers),
            "star_rows": N_PERSONS,
            "requests_batched": batched_client,
            "requests_per_binding": single_client,
            "reduction": reduction,
            "bench_seconds": elapsed,
            "gate": {
                "min_reduction": MIN_REQUEST_REDUCTION,
                "parity_mismatches": 0,
                "reconciled": True,
                "pass": True,
            },
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nresults written to {json_path}")


def test_federated_explain_over_http(stack):
    """EXPLAIN shows the batched plan without issuing data requests."""
    servers, _ = stack
    federation = make_federation(servers, batch_size=30)
    federation.select(STAR_QUERY)  # warm the probe cache
    for client in federation.endpoints:
        client.reset_log()
    plan = federation.explain(STAR_QUERY)
    assert "RemoteBindJoin" in plan and "batch=30" in plan
    assert sum(client.query_count for client in federation.endpoints) == 0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
