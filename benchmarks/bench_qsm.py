"""E7 — Section 7.3.2: QSM response time and usage.

Measures the QSM latency over representative broken queries (the QCM is
sub-second interactive; the QSM "can have a latency of a few seconds" —
the paper reports ~10 s on live DBpedia) and reproduces the usage
breakdown: in the user study, participants leaned on relaxation most,
then alternative predicates, then alternative literals.
"""

from __future__ import annotations

import time


from repro.baselines import QAKiS
from repro.core import QueryBuilder
from repro.data.corpus import RELATIONAL_PATTERNS
from repro.eval import UserStudy, format_table
from repro.rdf import DBO, FOAF, Literal, Variable

from conftest import emit


def _broken_queries():
    """Queries that exercise each QSM facility."""
    return {
        "alt-literal (Kennedys)": QueryBuilder().triple(
            Variable("p"), FOAF.surname, Literal("Kennedys", lang="en")
        ),
        "alt-predicate (wife)": (QueryBuilder()
            .triple(Variable("t"), FOAF.name, Literal("Tom Hanks", lang="en"))
            .triple(Variable("t"), DBO.term("wife"), Variable("w"))),
        "relaxation (Kerouac/Viking)": (QueryBuilder()
            .triple(Variable("b"), DBO.term("writer"), Literal("Jack Kerouac", lang="en"))
            .triple(Variable("b"), DBO.publisher, Literal("Viking Press", lang="en"))),
        "grounding (Princeton)": QueryBuilder().triple(
            Variable("s"), DBO.almaMater, Literal("Princeton University", lang="en")
        ),
    }


def test_qsm_latency(small_server, capsys, benchmark):
    benchmark.pedantic(
        lambda: small_server.run_query(_broken_queries()["alt-literal (Kennedys)"]),
        rounds=1, iterations=1,
    )
    rows = []
    for name, builder in _broken_queries().items():
        t0 = time.perf_counter()
        outcome = small_server.run_query(builder)
        wall = time.perf_counter() - t0
        rows.append({
            "query": name,
            "qsm_s": round(outcome.qsm_seconds, 3),
            "total_s": round(wall, 3),
            "term_suggestions": len(outcome.term_suggestions),
            "relaxations": len(outcome.relaxations),
        })
    with capsys.disabled():
        emit("E7.1 — QSM latency per broken query",
             format_table(rows) +
             "\n(paper: ~10 s average against live DBpedia; the shape that"
             "\n must hold is QSM seconds-class vs QCM milliseconds-class)")
    # Every broken query must receive at least one suggestion.
    for row in rows:
        assert row["term_suggestions"] + row["relaxations"] > 0, row["query"]


def test_qsm_usage_breakdown(tiny_server, tiny_dataset, capsys, benchmark):
    qakis = QAKiS(tiny_dataset.store, RELATIONAL_PATTERNS)
    results = benchmark.pedantic(
        UserStudy(tiny_server, qakis, n_participants=16, seed=7).run,
        rounds=1, iterations=1,
    )
    usage = results.qsm_usage()
    rows = [{"facility": k, "% of questions": round(v, 1)} for k, v in usage.items()]
    with capsys.disabled():
        emit("E7.2 — QSM usage across user-study sessions",
             format_table(rows) +
             "\n(paper: relaxed structure 67%, alt predicates 28%, alt"
             "\n literals 17%; our simulated users resolve more terms via"
             "\n the QCM, so absolute usage is lower — ordering holds)")
    assert usage["relaxation"] >= usage["alt_literal"]
    assert usage["any"] > 0


def test_bench_qsm_kerouac(benchmark, small_server):
    builder = (QueryBuilder()
               .triple(Variable("b"), DBO.term("writer"), Literal("Jack Kerouac", lang="en"))
               .triple(Variable("b"), DBO.publisher, Literal("Viking Press", lang="en")))

    def run():
        return small_server.run_query(builder)

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.relaxations
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
