#!/usr/bin/env python3
"""Session-replay load harness: many users, multi-process, reconciled.

Stands up one ``serve --sapphire``-equivalent HTTP server over the tiny
synthetic dataset and replays ``N_SESSIONS`` deterministic user-session
scripts (keystroke-cadence ``/complete`` streams, broken-literal
``/suggest`` rounds, gold re-issues, plain ``/sparql`` queries) from
``N_PROCESSES`` client worker processes over real sockets — the first
benchmark that exercises every subsystem (store, planner, federated
endpoint, suggestion cache, HTTP layer) concurrently in one topology.

Gate (runs in ``--quick`` CI mode too):

* ≥ 200 sessions from ≥ 4 client processes against one server;
* **zero** client/server count mismatches after ``/stats``
  reconciliation (per-route requests/ok/rejected/timeouts, rows served,
  and session-token activity all match the client ledger exactly);
* sustained throughput of at least ``MIN_RPS`` requests/second;
* the driver's ``/stats/series`` polling produced a non-trivial
  per-route latency-histogram time series (rendered via
  :func:`repro.eval.reporting.format_route_series` and written to the
  ``--json`` artifact).

Run:  PYTHONPATH=src python benchmarks/bench_replay.py [--quick] [--json out.json]
"""

from __future__ import annotations

import json
import os

import pytest
from conftest import emit

from repro import EndpointConfig, SapphireConfig, SapphireServer, SparqlEndpoint
from repro.eval.replay import ReplayConfig, generate_scripts, run_replay, scripts_to_json
from repro.eval.reporting import format_route_series
from repro.net import SparqlHttpServer

#: Acceptance gate: at least this many simulated user sessions...
N_SESSIONS = 200
#: ...replayed from at least this many client processes.
N_PROCESSES = 4
#: Sustained-throughput floor, requests/second over the whole replay
#: (spawn startup included) — conservative: loopback runs sustain far
#: more; the floor exists to catch pathological serialization.
MIN_RPS = 40.0

REPLAY_CONFIG = ReplayConfig(seed=2016, n_sessions=N_SESSIONS)


@pytest.fixture(scope="module")
def replay_stack(tiny_dataset):
    endpoint = SparqlEndpoint(
        tiny_dataset.store, EndpointConfig.warehouse(), name="replay-origin"
    )
    backend = SapphireServer(SapphireConfig(suffix_tree_capacity=500))
    backend.register_endpoint(endpoint)
    # Sample a slice of replayed requests into the slow-query log so the
    # artifact carries real operator traces from a loaded server.
    server = SparqlHttpServer(backend, max_workers=8, queue_limit=32,
                              trace_sample_rate=0.05).start()
    yield server
    server.stop()


def test_session_replay_reconciles(replay_stack, benchmark):
    server = replay_stack
    scripts = generate_scripts(REPLAY_CONFIG)
    assert len(scripts) >= 200

    # Byte-determinism is part of the harness contract: the same config
    # must describe the same workload on every machine, every run.
    assert scripts_to_json(scripts) == scripts_to_json(
        generate_scripts(REPLAY_CONFIG))

    # -- the replay itself (always runs, untimed: wall time is load) ---
    report = run_replay(scripts, server.url, processes=N_PROCESSES,
                        tick_s=0.25)

    assert report.mismatches == [], "\n".join(report.mismatches)
    assert report.ledger.sessions == N_SESSIONS
    assert report.processes >= 4
    total_attempts = report.ledger.attempts
    assert total_attempts >= N_SESSIONS * 5  # scripts are non-trivial
    assert report.throughput_rps >= MIN_RPS, (
        f"sustained {report.throughput_rps:.0f} req/s < {MIN_RPS} floor")

    # The driver's ticking produced a usable per-route time series: the
    # latency block in each point is the histogram, not a reservoir.
    assert len(report.series) >= 3
    last = report.series[-1]
    for route in ("sparql", "complete", "suggest"):
        latency = last["routes"][route]["latency"]
        assert latency["count"] > 0
        assert latency["buckets"], f"{route}: empty histogram"
    rendered = format_route_series(report.series)
    assert "complete" in rendered and "tick" in rendered

    # Sampled tracing (5% of requests) fed the slow-query log; the
    # worst trace goes into the artifact as a load-time exemplar.
    slow_log = server.slow_log.snapshot()
    assert slow_log["offered"] > 0, "sampled tracing produced no traces"
    assert slow_log["entries"], "slow-query log kept no entries"
    worst = slow_log["entries"][0]
    assert worst["trace"]["spans"], "worst trace has no spans"

    # -- timed rounds: script generation (the deterministic half) ------
    benchmark(generate_scripts, REPLAY_CONFIG)

    by_route = {
        route: report.ledger.routes[route]["attempts"]
        for route in sorted(report.ledger.routes)
    }
    emit(
        f"Session replay — {N_SESSIONS} sessions from {N_PROCESSES} "
        f"client processes",
        f"requests:       {total_attempts} {by_route}\n"
        f"wall:           {report.wall_s:.2f}s "
        f"({report.throughput_rps:,.0f} req/s sustained)\n"
        f"queue peaks:    queued {report.after['queued_peak']}, "
        f"in-flight {report.after['in_flight_peak']}\n"
        f"cache lookups:  {report.after.get('cache')}\n"
        f"series points:  {len(report.series)}\n"
        f"traced:         {slow_log['offered']} sampled, worst "
        f"{worst['wall_s'] * 1e3:.1f}ms on /{worst['route']}\n"
        f"gate:           zero reconciliation mismatches, "
        f">= {MIN_RPS:.0f} req/s\n\n"
        + format_route_series(report.series[-6:],
                              title="Per-route series (last 6 ticks)"),
    )

    json_path = os.environ.get("BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "session_replay",
            "sessions": N_SESSIONS,
            "processes": N_PROCESSES,
            "requests": total_attempts,
            "requests_by_route": by_route,
            "wall_s": report.wall_s,
            "throughput_rps": report.throughput_rps,
            "series": report.series,
            "ledger": report.ledger.to_dict(),
            "deltas": report.deltas,
            "slow_queries": {
                "offered": slow_log["offered"],
                "slow_count": slow_log["slow_count"],
                "entries": len(slow_log["entries"]),
            },
            "worst_trace": worst["trace"],
            "gate": {
                "min_sessions": 200,
                "min_processes": 4,
                "min_rps": MIN_RPS,
                "mismatches": 0,
                "reconciled": True,
                "pass": True,
            },
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nresults written to {json_path}")


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
