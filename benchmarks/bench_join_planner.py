#!/usr/bin/env python3
"""Join-planner benchmark: cost-based hash joins vs seed backtracking.

Runs the same star, chain, and cyclic basic graph patterns through two
evaluator configurations over both storage backends:

* ``backtrack`` — ``QueryEvaluator(store, use_planner=False)``: the
  seed's greedy-ordered backtracking index-nested-loop join, kept as
  the baseline,
* ``planner`` — the default evaluator: cost-based left-deep hash/bind
  joins with filter pushdown and late materialization
  (``src/repro/sparql/plan.py``).

Protocol (same as ``bench_store_encoding.py``): **parity first** — for
every query the two paths must produce identical row multisets on both
backends before anything is timed; a speedup can never come from
silently matching less.  Then each shape's query set is timed best-of-N
and the gate requires the planner to be >= MIN_SPEEDUP faster on the
star and chain shapes over the in-memory backend (cyclic BGPs are
parity-checked and reported but not gated: their tiny result sets are
dominated by fixed costs).

``--json PATH`` writes the machine-readable results consumed by CI
(uploaded as a ``BENCH_*.json`` artifact so a perf trajectory
accumulates across commits).

Run:  PYTHONPATH=src python benchmarks/bench_join_planner.py [--quick] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.data import DatasetConfig, build_dataset
from repro.sparql.evaluator import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.store import MemoryBackend, SQLiteBackend, TripleStore

#: Gate: minimum planner speedup over the backtracking baseline on the
#: in-memory backend, per gated shape.
MIN_SPEEDUP = 2.0

#: Shape -> queries.  Stars fan out from one subject variable, chains
#: hop subject->object->subject, cyclic closes a variable loop.
SHAPES: Dict[str, List[str]] = {
    "star": [
        "SELECT ?s ?n ?g WHERE { ?s foaf:surname ?n . ?s foaf:givenName ?g . ?s dbo:birthDate ?d }",
        "SELECT * WHERE { ?s a dbo:Person . ?s foaf:name ?n . ?s dbo:birthDate ?d . ?s dbo:birthPlace ?c }",
        "SELECT * WHERE { ?s foaf:name ?n . ?s foaf:givenName ?g . ?s foaf:surname ?f . "
        "?s dbo:birthDate ?d . ?s dbo:birthPlace ?c }",
    ],
    "chain": [
        "SELECT ?p ?k WHERE { ?p dbo:birthPlace ?c . ?c dbo:country ?k }",
        "SELECT ?b ?k WHERE { ?b dbo:author ?a . ?a dbo:birthPlace ?c . ?c dbo:country ?k }",
        "SELECT ?f ?n WHERE { ?f dbo:starring ?p . ?p foaf:name ?n }",
    ],
    "cyclic": [
        "SELECT ?a ?b ?u WHERE { ?a dbo:spouse ?b . ?a dbo:almaMater ?u . ?b dbo:almaMater ?u }",
        "SELECT ?a ?b WHERE { ?a dbo:spouse ?b . ?b dbo:spouse ?a }",
    ],
}

#: Shapes whose speedup is enforced (cyclic is parity-only).
GATED_SHAPES = ("star", "chain")


def _row_key(rows) -> List[Tuple]:
    """Order-insensitive, hashable view of a result's row multiset."""
    return sorted(
        tuple(sorted((name, str(term)) for name, term in row.items()))
        for row in rows
    )


def _time_best(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(scale: str, repeat: int, json_path: Optional[str] = None) -> int:
    config = DatasetConfig.tiny() if scale == "tiny" else DatasetConfig.small()
    dataset = build_dataset(config)
    triples = list(dataset.store.triples())
    backends = {
        "memory": TripleStore(triples, backend=MemoryBackend()),
        "sqlite": TripleStore(triples, backend=SQLiteBackend(":memory:")),
    }
    parsed = {
        shape: [parse_query(q) for q in queries]
        for shape, queries in SHAPES.items()
    }

    # -- parity gate: identical row multisets everywhere, before timing.
    failures = []
    row_counts: Dict[str, int] = {}
    for backend_name, store in backends.items():
        planner = QueryEvaluator(store)
        backtrack = QueryEvaluator(store, use_planner=False)
        for shape, queries in parsed.items():
            for text, query in zip(SHAPES[shape], queries):
                a = _row_key(planner.evaluate(query).rows)
                b = _row_key(backtrack.evaluate(query).rows)
                if a != b:
                    failures.append((backend_name, text, len(a), len(b)))
                row_counts[f"{shape}:{text[:40]}"] = len(a)
    if failures:
        print("PARITY FAILURE: planner and backtracking paths disagree")
        for backend_name, text, n_planner, n_backtrack in failures:
            print(f"  [{backend_name}] planner={n_planner} backtrack={n_backtrack}  {text}")
        return 1

    n_queries = sum(len(qs) for qs in SHAPES.values())
    print(f"dataset: {scale} ({len(triples):,} triples), {n_queries} queries "
          f"across {len(SHAPES)} BGP shapes, best of {repeat}")
    print(f"parity: identical row multisets, planner vs backtracking, "
          f"both backends ({sum(row_counts.values()):,} total rows)\n")

    # -- timing per backend x shape.
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    header = f"{'backend':<8} {'shape':<8} {'backtrack_s':>12} {'planner_s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for backend_name, store in backends.items():
        planner = QueryEvaluator(store)
        backtrack = QueryEvaluator(store, use_planner=False)
        results[backend_name] = {}
        for shape, queries in parsed.items():

            def run_all(evaluator, queries=queries):
                for query in queries:
                    evaluator.evaluate(query)

            backtrack_s = _time_best(lambda: run_all(backtrack), repeat)
            planner_s = _time_best(lambda: run_all(planner), repeat)
            speedup = backtrack_s / planner_s if planner_s else float("inf")
            results[backend_name][shape] = {
                "backtrack_s": backtrack_s,
                "planner_s": planner_s,
                "speedup": speedup,
            }
            print(f"{backend_name:<8} {shape:<8} {backtrack_s:>12.4f} "
                  f"{planner_s:>10.4f} {speedup:>7.2f}x")

    backends["sqlite"].close()

    # -- speedup gate on the in-memory backend.
    gate_ok = True
    print(f"\ngate (memory backend, >= {MIN_SPEEDUP:.1f}x on {', '.join(GATED_SHAPES)}):")
    for shape in GATED_SHAPES:
        speedup = results["memory"][shape]["speedup"]
        status = "ok" if speedup >= MIN_SPEEDUP else "FAIL"
        gate_ok = gate_ok and speedup >= MIN_SPEEDUP
        print(f"  {shape:<8} {speedup:5.2f}x  {status}")

    if json_path:
        payload = {
            "benchmark": "join_planner",
            "dataset": {"scale": scale, "triples": len(triples)},
            "repeat": repeat,
            "parity": "ok",
            "results": results,
            "gate": {
                "min_speedup": MIN_SPEEDUP,
                "shapes": list(GATED_SHAPES),
                "pass": gate_ok,
            },
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nresults written to {json_path}")

    if not gate_ok:
        print("REGRESSION: planner slower than the gate allows")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (CI smoke run); keeps the small "
                             "dataset so the speedup gate is not dominated by "
                             "fixed per-query costs")
    parser.add_argument("--scale", choices=("tiny", "small"), default=None,
                        help="dataset scale (default: small)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (best-of)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH")
    args = parser.parse_args(argv)
    scale = args.scale or "small"
    # Best-of-5 in both modes: the star gate has the least margin, and
    # a larger best-of keeps scheduler jitter on shared CI runners from
    # flipping it (the whole timed section is well under a second).
    repeat = args.repeat or 5
    return run(scale, repeat, args.json)


if __name__ == "__main__":
    sys.exit(main())
