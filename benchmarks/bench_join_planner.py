#!/usr/bin/env python3
"""Join-planner and batch-executor benchmark with regression gates.

Two gated comparisons, both parity-checked before anything is timed
(identical row multisets on both storage backends; a speedup can never
come from silently matching less):

1. **Planner vs backtracking** — star, chain, cyclic, and large-scan
   BGPs through ``QueryEvaluator(store)`` (cost-based left-deep
   hash/bind joins, filter pushdown, late materialization) against
   ``QueryEvaluator(store, execution="backtrack")`` (the seed's
   greedy-ordered backtracking join).  Gate: planner >= MIN_SPEEDUP on
   star and chain over the in-memory backend (cyclic and large-scan are
   parity-checked and reported but not gated: single scans and tiny
   cyclic results are dominated by fixed costs).

2. **Batch vs tuple pipeline** — the same physical plans drained
   through the columnar ``batches()`` pipeline (default) against the
   row-at-a-time ``rows_tuple()`` baseline
   (``QueryEvaluator(store, batch_size=0)``).  Runs on the medium
   dataset regardless of ``--scale`` — at small scale fixed per-query
   costs (parse, plan, result assembly) drown the pipeline differential
   the gate is supposed to watch.  Gate: batch >= MIN_BATCH_SPEEDUP on
   star, chain, and bound-object large-scan shapes on BOTH backends.

``--json PATH`` writes the machine-readable results consumed by CI
(uploaded as a ``BENCH_*.json`` artifact so a perf trajectory
accumulates across commits).

Run:  PYTHONPATH=src python benchmarks/bench_join_planner.py [--quick] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.data import DatasetConfig, build_dataset
from repro.sparql.evaluator import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.sparql.trace import Tracer
from repro.store import MemoryBackend, SQLiteBackend, TripleStore

#: Gate: minimum planner speedup over the backtracking baseline on the
#: in-memory backend, per gated shape.
MIN_SPEEDUP = 2.0

#: Gate: minimum columnar-pipeline speedup over the tuple-at-a-time
#: baseline, per gated shape, on both backends.
MIN_BATCH_SPEEDUP = 2.0

#: Gate: maximum traced/untraced wall-time ratio on the batch path.
#: Tracing off costs one ``is None`` test per operator; tracing on adds
#: span bookkeeping per batch pull — both must stay inside 5%.
MAX_TRACE_OVERHEAD = 1.05

#: Shape -> queries.  Stars fan out from one subject variable, chains
#: hop subject->object->subject, cyclic closes a variable loop.
SHAPES: Dict[str, List[str]] = {
    "star": [
        "SELECT ?s ?n ?g WHERE { ?s foaf:surname ?n . ?s foaf:givenName ?g . ?s dbo:birthDate ?d }",
        "SELECT * WHERE { ?s a dbo:Person . ?s foaf:name ?n . ?s dbo:birthDate ?d . ?s dbo:birthPlace ?c }",
        "SELECT * WHERE { ?s foaf:name ?n . ?s foaf:givenName ?g . ?s foaf:surname ?f . "
        "?s dbo:birthDate ?d . ?s dbo:birthPlace ?c }",
    ],
    "chain": [
        "SELECT ?p ?k WHERE { ?p dbo:birthPlace ?c . ?c dbo:country ?k }",
        "SELECT ?b ?k WHERE { ?b dbo:author ?a . ?a dbo:birthPlace ?c . ?c dbo:country ?k }",
        "SELECT ?f ?n WHERE { ?f dbo:starring ?p . ?p foaf:name ?n }",
    ],
    "cyclic": [
        "SELECT ?a ?b ?u WHERE { ?a dbo:spouse ?b . ?a dbo:almaMater ?u . ?b dbo:almaMater ?u }",
        "SELECT ?a ?b WHERE { ?a dbo:spouse ?b . ?b dbo:spouse ?a }",
    ],
    "large_scan": [
        "SELECT ?s WHERE { ?s a dbo:Person }",
        "SELECT ?s ?p WHERE { ?s ?p dbo:Person }",
        "SELECT ?s ?n WHERE { ?s foaf:name ?n }",
    ],
}

#: Shapes whose planner-vs-backtrack speedup is enforced (cyclic and
#: large-scan are parity-only there: fixed costs dominate).
GATED_SHAPES = ("star", "chain")

#: Shapes whose batch-vs-tuple speedup is enforced, on both backends.
BATCH_GATED_SHAPES = ("star", "chain", "large_scan")


def _row_key(rows) -> List[Tuple]:
    """Order-insensitive, hashable view of a result's row multiset."""
    return sorted(
        tuple(sorted((name, str(term)) for name, term in row.items()))
        for row in rows
    )


def _time_best(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(scale: str, repeat: int, json_path: Optional[str] = None) -> int:
    config = DatasetConfig.tiny() if scale == "tiny" else DatasetConfig.small()
    dataset = build_dataset(config)
    triples = list(dataset.store.triples())
    backends = {
        "memory": TripleStore(triples, backend=MemoryBackend()),
        "sqlite": TripleStore(triples, backend=SQLiteBackend(":memory:")),
    }
    parsed = {
        shape: [parse_query(q) for q in queries]
        for shape, queries in SHAPES.items()
    }

    # -- parity gate: identical row multisets everywhere, before timing.
    failures = []
    row_counts: Dict[str, int] = {}
    for backend_name, store in backends.items():
        planner = QueryEvaluator(store)
        backtrack = QueryEvaluator(store, execution="backtrack")
        for shape, queries in parsed.items():
            for text, query in zip(SHAPES[shape], queries):
                a = _row_key(planner.evaluate(query).rows)
                b = _row_key(backtrack.evaluate(query).rows)
                if a != b:
                    failures.append((backend_name, text, len(a), len(b)))
                row_counts[f"{shape}:{text[:40]}"] = len(a)
    if failures:
        print("PARITY FAILURE: planner and backtracking paths disagree")
        for backend_name, text, n_planner, n_backtrack in failures:
            print(f"  [{backend_name}] planner={n_planner} backtrack={n_backtrack}  {text}")
        return 1

    n_queries = sum(len(qs) for qs in SHAPES.values())
    print(f"dataset: {scale} ({len(triples):,} triples), {n_queries} queries "
          f"across {len(SHAPES)} BGP shapes, best of {repeat}")
    print(f"parity: identical row multisets, planner vs backtracking, "
          f"both backends ({sum(row_counts.values()):,} total rows)\n")

    # -- timing per backend x shape.
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    header = f"{'backend':<8} {'shape':<8} {'backtrack_s':>12} {'planner_s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for backend_name, store in backends.items():
        planner = QueryEvaluator(store)
        backtrack = QueryEvaluator(store, execution="backtrack")
        results[backend_name] = {}
        for shape, queries in parsed.items():

            def run_all(evaluator, queries=queries):
                for query in queries:
                    evaluator.evaluate(query)

            backtrack_s = _time_best(lambda: run_all(backtrack), repeat)
            planner_s = _time_best(lambda: run_all(planner), repeat)
            speedup = backtrack_s / planner_s if planner_s else float("inf")
            results[backend_name][shape] = {
                "backtrack_s": backtrack_s,
                "planner_s": planner_s,
                "speedup": speedup,
            }
            print(f"{backend_name:<8} {shape:<8} {backtrack_s:>12.4f} "
                  f"{planner_s:>10.4f} {speedup:>7.2f}x")

    backends["sqlite"].close()

    # -- speedup gate on the in-memory backend.
    gate_ok = True
    print(f"\ngate (memory backend, >= {MIN_SPEEDUP:.1f}x on {', '.join(GATED_SHAPES)}):")
    for shape in GATED_SHAPES:
        speedup = results["memory"][shape]["speedup"]
        status = "ok" if speedup >= MIN_SPEEDUP else "FAIL"
        gate_ok = gate_ok and speedup >= MIN_SPEEDUP
        print(f"  {shape:<8} {speedup:5.2f}x  {status}")

    (batch_results, batch_ok, batch_triples,
     tracing, tracing_ok) = run_batch_section(repeat)

    if json_path:
        payload = {
            "benchmark": "join_planner",
            "dataset": {"scale": scale, "triples": len(triples)},
            "repeat": repeat,
            "parity": "ok",
            "results": results,
            "gate": {
                "min_speedup": MIN_SPEEDUP,
                "shapes": list(GATED_SHAPES),
                "pass": gate_ok,
            },
            "batch_dataset": {"scale": "medium", "triples": batch_triples},
            "batch_results": batch_results,
            "batch_gate": {
                "min_speedup": MIN_BATCH_SPEEDUP,
                "shapes": list(BATCH_GATED_SHAPES),
                "backends": ["memory", "sqlite"],
                "pass": batch_ok,
            },
            "tracing": tracing,
            "tracing_gate": {
                "max_overhead": MAX_TRACE_OVERHEAD,
                "pass": tracing_ok,
            },
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nresults written to {json_path}")

    if not gate_ok:
        print("REGRESSION: planner slower than the gate allows")
        return 1
    if not batch_ok:
        print("REGRESSION: batch pipeline slower than the gate allows")
        return 1
    if not tracing_ok:
        print("REGRESSION: tracing overhead above the gate")
        return 1
    return 0


def run_batch_section(repeat: int) -> Tuple[Dict, bool, int, Dict, bool]:
    """Batch-vs-tuple pipeline comparison over the same physical plans.

    Always builds the medium dataset: the pipeline differential (C-pass
    scans, joins and gathers vs per-row generator hops) only becomes
    measurable once result sets reach a few thousand rows.  Parity first,
    then best-of-N timing per shape, gated on both backends.
    """
    config = DatasetConfig.medium()
    dataset = build_dataset(config)
    triples = list(dataset.store.triples())
    backends = {
        "memory": TripleStore(triples, backend=MemoryBackend()),
        "sqlite": TripleStore(triples, backend=SQLiteBackend(":memory:")),
    }
    parsed = {
        shape: [parse_query(q) for q in SHAPES[shape]]
        for shape in BATCH_GATED_SHAPES
    }

    failures = []
    for backend_name, store in backends.items():
        batch = QueryEvaluator(store)
        tuple_ev = QueryEvaluator(store, batch_size=0)
        for shape, queries in parsed.items():
            for text, query in zip(SHAPES[shape], queries):
                a = _row_key(batch.evaluate(query).rows)
                b = _row_key(tuple_ev.evaluate(query).rows)
                if a != b:
                    failures.append((backend_name, text, len(a), len(b)))
    if failures:
        print("\nPARITY FAILURE: batch and tuple pipelines disagree")
        for backend_name, text, n_batch, n_tuple in failures:
            print(f"  [{backend_name}] batch={n_batch} tuple={n_tuple}  {text}")
        for store in backends.values():
            store.close()
        return {}, False, len(triples), {}, False

    print(f"\nbatch pipeline vs tuple baseline "
          f"(medium dataset, {len(triples):,} triples, best of {repeat})")
    header = (f"{'backend':<8} {'shape':<11} {'tuple_s':>10} "
              f"{'batch_s':>10} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    batch_results: Dict[str, Dict[str, Dict[str, float]]] = {}
    batch_ok = True
    for backend_name, store in backends.items():
        batch = QueryEvaluator(store)
        tuple_ev = QueryEvaluator(store, batch_size=0)
        batch_results[backend_name] = {}
        for shape, queries in parsed.items():

            def run_all(evaluator, queries=queries):
                for query in queries:
                    evaluator.evaluate(query)

            tuple_s = _time_best(lambda: run_all(tuple_ev), repeat)
            batch_s = _time_best(lambda: run_all(batch), repeat)
            speedup = tuple_s / batch_s if batch_s else float("inf")
            batch_results[backend_name][shape] = {
                "tuple_s": tuple_s,
                "batch_s": batch_s,
                "speedup": speedup,
            }
            gated = shape in BATCH_GATED_SHAPES
            ok = speedup >= MIN_BATCH_SPEEDUP
            batch_ok = batch_ok and (ok or not gated)
            status = "ok" if ok else "FAIL"
            print(f"{backend_name:<8} {shape:<11} {tuple_s:>10.4f} "
                  f"{batch_s:>10.4f} {speedup:>7.2f}x  {status}")

    print(f"batch gate: >= {MIN_BATCH_SPEEDUP:.1f}x on "
          f"{', '.join(BATCH_GATED_SHAPES)}, both backends: "
          f"{'ok' if batch_ok else 'FAIL'}")

    tracing, tracing_ok = run_tracing_section(
        backends["memory"], parsed, repeat)

    backends["sqlite"].close()
    return batch_results, batch_ok, len(triples), tracing, tracing_ok


def run_tracing_section(store, parsed, repeat: int) -> Tuple[Dict, bool]:
    """EXPLAIN ANALYZE overhead on the hot batch path (memory backend).

    Times the same star/chain/large-scan plans with no tracer (the
    default — one ``is None`` test per operator) against a fresh
    :class:`~repro.sparql.trace.Tracer` per query, best of ``repeat``.
    Gate: traced/untraced <= MAX_TRACE_OVERHEAD.
    """
    evaluator = QueryEvaluator(store)
    queries = [query for group in parsed.values() for query in group]

    def run_untraced():
        for query in queries:
            evaluator.evaluate(query)

    def run_traced():
        for query in queries:
            evaluator.evaluate(query, tracer=Tracer())

    # The whole timed section is ~10ms per pass, so a single scheduler
    # hiccup flips a 5% gate: warm both paths (plan cache, allocator),
    # then take the best of a larger repeat count than the other
    # sections use.
    run_untraced()
    run_traced()
    repeat = max(repeat, 10)
    off_s = _time_best(run_untraced, repeat)
    on_s = _time_best(run_traced, repeat)
    ratio = on_s / off_s if off_s else float("inf")
    ok = ratio <= MAX_TRACE_OVERHEAD
    print(f"\ntracing overhead (memory backend, {len(queries)} queries, "
          f"best of {repeat})")
    print(f"  untraced {off_s:.4f}s   traced {on_s:.4f}s   "
          f"ratio {ratio:.3f}x  {'ok' if ok else 'FAIL'}")
    print(f"tracing gate: traced/untraced <= {MAX_TRACE_OVERHEAD:.2f}x: "
          f"{'ok' if ok else 'FAIL'}")
    return {"untraced_s": off_s, "traced_s": on_s, "ratio": ratio}, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (CI smoke run); keeps the small "
                             "dataset so the speedup gate is not dominated by "
                             "fixed per-query costs")
    parser.add_argument("--scale", choices=("tiny", "small"), default=None,
                        help="dataset scale (default: small)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (best-of)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH")
    args = parser.parse_args(argv)
    scale = args.scale or "small"
    # Best-of-5 in both modes: the star gate has the least margin, and
    # a larger best-of keeps scheduler jitter on shared CI runners from
    # flipping it (the whole timed section is well under a second).
    repeat = args.repeat or 5
    return run(scale, repeat, args.json)


if __name__ == "__main__":
    sys.exit(main())
