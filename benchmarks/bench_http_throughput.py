#!/usr/bin/env python3
"""HTTP serving throughput: concurrent clients over loopback.

Stands up a :class:`SparqlHttpServer` over the tiny synthetic dataset
and drives it with ``N_CLIENTS`` concurrent :class:`HttpSparqlEndpoint`
clients, each issuing the full query mix per round.  Reports sustained
QPS and client-observed latency percentiles.

Gate (runs in ``--quick`` CI mode too):

* every response must match the rows the wrapped in-process endpoint
  returns for the same query — zero dropped or incorrect responses;
* the server's ``/stats`` counters must reconcile exactly with the
  client-side totals (requests, successes, rows served; no rejects or
  timeouts at this concurrency).

``--json PATH`` (via ``conftest.bench_main``) writes the machine-readable
results CI uploads as a ``BENCH_*.json`` artifact.

Run:  PYTHONPATH=src python benchmarks/bench_http_throughput.py [--quick] [--json out.json]
"""

from __future__ import annotations

import json
import os
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Tuple

import pytest
from conftest import emit

from repro import EndpointConfig, SparqlEndpoint
from repro.net import HttpSparqlEndpoint, SparqlHttpServer
from repro.net.wsgi import _percentile

#: Concurrency gate: the server must sustain at least this many clients.
N_CLIENTS = 8

#: Per-client query mix: scans, joins, aggregation, ASK-shaped traffic.
QUERIES = [
    "SELECT ?s WHERE { ?s a dbo:Person } LIMIT 50",
    "SELECT ?s ?n WHERE { ?s foaf:name ?n } LIMIT 100",
    "SELECT ?p ?c WHERE { ?p dbo:birthPlace ?c }",
    "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?t ORDER BY DESC(?n) ?t",
    "SELECT ?b ?k WHERE { ?b dbo:author ?a . ?a dbo:birthPlace ?c . ?c dbo:country ?k }",
]


def row_key(result) -> List[Tuple]:
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in result.rows
    )


@pytest.fixture(scope="module")
def stack(tiny_dataset):
    endpoint = SparqlEndpoint(
        tiny_dataset.store, EndpointConfig.warehouse(), name="bench-origin"
    )
    expected = {query: row_key(endpoint.select(query)) for query in QUERIES}
    server = SparqlHttpServer(
        endpoint, max_workers=N_CLIENTS, queue_limit=4 * N_CLIENTS
    ).start()
    clients = [
        HttpSparqlEndpoint(server.url, name=f"client-{i}", timeout_s=30.0)
        for i in range(N_CLIENTS)
    ]
    yield server, clients, expected
    server.stop()


def fetch_stats(server) -> Dict:
    url = f"http://{server.host}:{server.port}/stats"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.load(response)


def run_round(clients, expected) -> Tuple[List[float], List[str], int]:
    """One concurrent round: every client runs the full mix.

    Returns (per-request latencies, mismatch descriptions, rows seen).
    """
    latencies: List[float] = []
    mismatches: List[str] = []
    rows_seen = 0

    def drive(client) -> Tuple[List[float], List[str], int]:
        local_lat, local_bad, local_rows = [], [], 0
        for query in QUERIES:
            started = time.perf_counter()
            result = client.select(query)
            local_lat.append(time.perf_counter() - started)
            local_rows += len(result.rows)
            if row_key(result) != expected[query]:
                local_bad.append(f"{client.name}: wrong rows for {query!r}")
        return local_lat, local_bad, local_rows

    with ThreadPoolExecutor(max_workers=len(clients)) as pool:
        for local_lat, local_bad, local_rows in pool.map(drive, clients):
            latencies.extend(local_lat)
            mismatches.extend(local_bad)
            rows_seen += local_rows
    return latencies, mismatches, rows_seen


def percentile(sample: List[float], fraction: float) -> float:
    """Client-side percentiles use the server's nearest-rank helper so
    the bench and /stats can never disagree on the formula."""
    return _percentile(sorted(sample), fraction)


def test_http_throughput(stack, benchmark):
    server, clients, expected = stack
    expected_rows_per_round = sum(len(rows) for rows in expected.values()) * len(clients)
    requests_per_round = len(clients) * len(QUERIES)

    # -- correctness + reconciliation round (always runs, untimed) -----
    before = fetch_stats(server)
    started = time.perf_counter()
    latencies, mismatches, rows_seen = run_round(clients, expected)
    elapsed = time.perf_counter() - started
    after = fetch_stats(server)

    assert mismatches == [], "\n".join(mismatches)
    assert rows_seen == expected_rows_per_round
    assert after["requests"] - before["requests"] == requests_per_round
    assert after["ok"] - before["ok"] == requests_per_round
    assert after["rejected"] == before["rejected"]
    assert after["timeouts"] == before["timeouts"]
    assert after["rows_served"] - before["rows_served"] == expected_rows_per_round

    qps = requests_per_round / elapsed
    p50_ms = percentile(latencies, 0.50) * 1e3
    p99_ms = percentile(latencies, 0.99) * 1e3

    # -- timed rounds (pytest-benchmark; a single pass under --quick) --
    def timed_round():
        lat, bad, _ = run_round(clients, expected)
        assert not bad
        return lat

    benchmark(timed_round)

    emit(
        f"HTTP throughput — {len(clients)} concurrent clients over loopback",
        f"requests/round: {requests_per_round} "
        f"({len(QUERIES)} queries x {len(clients)} clients)\n"
        f"sustained QPS:  {qps:,.0f}\n"
        f"latency p50:    {p50_ms:.2f} ms\n"
        f"latency p99:    {p99_ms:.2f} ms\n"
        f"rows/round:     {expected_rows_per_round:,}\n"
        f"server stats:   {after['requests']} requests, "
        f"{after['rejected']} rejected, {after['timeouts']} timeouts\n"
        f"gate:           zero mismatches, stats reconciled",
    )

    json_path = os.environ.get("BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "http_throughput",
            "clients": len(clients),
            "queries_per_client": len(QUERIES),
            "qps": qps,
            "latency_ms": {"p50": p50_ms, "p99": p99_ms},
            "rows_per_round": expected_rows_per_round,
            "server_stats": after,
            "gate": {
                "min_clients": N_CLIENTS,
                "mismatches": 0,
                "reconciled": True,
                "pass": True,
            },
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nresults written to {json_path}")


def test_overload_sheds_load_cleanly(stack):
    """Past the admission limit the server answers 503 (never hangs or
    drops the connection), and the counters account for every request."""
    server, clients, expected = stack
    tight = SparqlHttpServer(
        server.app.backend, max_workers=1, queue_limit=1, deadline_s=5.0
    ).start()
    try:
        hammer = [
            HttpSparqlEndpoint(tight.url, name=f"h{i}", max_retries=0,
                               timeout_s=30.0)
            for i in range(2 * N_CLIENTS)
        ]

        def drive(client) -> str:
            from repro.endpoint.endpoint import QueryRejected

            try:
                client.select(QUERIES[2])
                return "ok"
            except QueryRejected:
                return "rejected"

        with ThreadPoolExecutor(max_workers=len(hammer)) as pool:
            outcomes = list(pool.map(drive, hammer))
        stats = fetch_stats(tight)
        # Every request is accounted for: served or cleanly rejected.
        assert outcomes.count("ok") + outcomes.count("rejected") == len(hammer)
        assert outcomes.count("ok") >= 1
        assert stats["ok"] == outcomes.count("ok")
        assert stats["rejected"] == outcomes.count("rejected")
        assert stats["requests"] == len(hammer)
    finally:
        tight.stop()


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
