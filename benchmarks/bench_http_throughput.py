#!/usr/bin/env python3
"""HTTP serving throughput: concurrent clients over loopback.

Stands up a :class:`SparqlHttpServer` over the tiny synthetic dataset
and drives it with ``N_CLIENTS`` concurrent :class:`HttpSparqlEndpoint`
clients, each issuing the full query mix per round.  Reports sustained
QPS and client-observed latency percentiles.

Gate (runs in ``--quick`` CI mode too):

* every response must match the rows the wrapped in-process endpoint
  returns for the same query — zero dropped or incorrect responses;
* the server's ``/stats`` counters must reconcile exactly with the
  client-side totals (requests, successes, rows served; no rejects or
  timeouts at this concurrency).

``--json PATH`` (via ``conftest.bench_main``) writes the machine-readable
results CI uploads as a ``BENCH_*.json`` artifact.

Run:  PYTHONPATH=src python benchmarks/bench_http_throughput.py [--quick] [--json out.json]
"""

from __future__ import annotations

import json
import os
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Tuple

import pytest
from conftest import emit

from repro import EndpointConfig, SparqlEndpoint
from repro.net import HttpSparqlEndpoint, SparqlHttpServer
from repro.net.wsgi import _percentile

#: Concurrency gate: the server must sustain at least this many clients.
N_CLIENTS = 8

#: Pre-fork pool sizes for the worker-count scaling section.
WORKER_COUNTS = [1, 2, 4]

#: Timed rounds per worker count in the scaling section.
SCALING_ROUNDS = 2

#: Per-client query mix: scans, joins, aggregation, ASK-shaped traffic.
QUERIES = [
    "SELECT ?s WHERE { ?s a dbo:Person } LIMIT 50",
    "SELECT ?s ?n WHERE { ?s foaf:name ?n } LIMIT 100",
    "SELECT ?p ?c WHERE { ?p dbo:birthPlace ?c }",
    "SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?t ORDER BY DESC(?n) ?t",
    "SELECT ?b ?k WHERE { ?b dbo:author ?a . ?a dbo:birthPlace ?c . ?c dbo:country ?k }",
]


def row_key(result) -> List[Tuple]:
    return sorted(
        tuple(sorted((name, term.n3()) for name, term in row.items()))
        for row in result.rows
    )


@pytest.fixture(scope="module")
def stack(tiny_dataset):
    endpoint = SparqlEndpoint(
        tiny_dataset.store, EndpointConfig.warehouse(), name="bench-origin"
    )
    expected = {query: row_key(endpoint.select(query)) for query in QUERIES}
    server = SparqlHttpServer(
        endpoint, max_workers=N_CLIENTS, queue_limit=4 * N_CLIENTS
    ).start()
    clients = [
        HttpSparqlEndpoint(server.url, name=f"client-{i}", timeout_s=30.0)
        for i in range(N_CLIENTS)
    ]
    yield server, clients, expected
    server.stop()


def fetch_stats(server) -> Dict:
    url = f"http://{server.host}:{server.port}/stats"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.load(response)


def run_round(clients, expected) -> Tuple[List[float], List[str], int]:
    """One concurrent round: every client runs the full mix.

    Returns (per-request latencies, mismatch descriptions, rows seen).
    """
    latencies: List[float] = []
    mismatches: List[str] = []
    rows_seen = 0

    def drive(client) -> Tuple[List[float], List[str], int]:
        local_lat, local_bad, local_rows = [], [], 0
        for query in QUERIES:
            started = time.perf_counter()
            result = client.select(query)
            local_lat.append(time.perf_counter() - started)
            local_rows += len(result.rows)
            if row_key(result) != expected[query]:
                local_bad.append(f"{client.name}: wrong rows for {query!r}")
        return local_lat, local_bad, local_rows

    with ThreadPoolExecutor(max_workers=len(clients)) as pool:
        for local_lat, local_bad, local_rows in pool.map(drive, clients):
            latencies.extend(local_lat)
            mismatches.extend(local_bad)
            rows_seen += local_rows
    return latencies, mismatches, rows_seen


def percentile(sample: List[float], fraction: float) -> float:
    """Client-side percentiles use the server's nearest-rank helper so
    the bench and /stats can never disagree on the formula."""
    return _percentile(sorted(sample), fraction)


def update_bench_json(data: Dict, section: str = None) -> None:
    """Merge results into the ``--json`` artifact.

    Both tests in this file contribute to one ``BENCH_*.json``; merging
    (instead of overwriting) keeps the artifact whole regardless of
    which subset ran (``-k``).
    """
    json_path = os.environ.get("BENCH_JSON")
    if not json_path:
        return
    try:
        with open(json_path) as handle:
            payload = json.load(handle)
    except (FileNotFoundError, ValueError):
        payload = {}
    payload["benchmark"] = "http_throughput"
    if section is None:
        payload.update(data)
    else:
        payload[section] = data
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nresults written to {json_path}")


def test_http_throughput(stack, benchmark):
    server, clients, expected = stack
    expected_rows_per_round = sum(len(rows) for rows in expected.values()) * len(clients)
    requests_per_round = len(clients) * len(QUERIES)

    # -- correctness + reconciliation round (always runs, untimed) -----
    before = fetch_stats(server)
    started = time.perf_counter()
    latencies, mismatches, rows_seen = run_round(clients, expected)
    elapsed = time.perf_counter() - started
    after = fetch_stats(server)

    assert mismatches == [], "\n".join(mismatches)
    assert rows_seen == expected_rows_per_round
    assert after["requests"] - before["requests"] == requests_per_round
    assert after["ok"] - before["ok"] == requests_per_round
    assert after["rejected"] == before["rejected"]
    assert after["timeouts"] == before["timeouts"]
    assert after["rows_served"] - before["rows_served"] == expected_rows_per_round

    qps = requests_per_round / elapsed
    p50_ms = percentile(latencies, 0.50) * 1e3
    p99_ms = percentile(latencies, 0.99) * 1e3

    # -- timed rounds (pytest-benchmark; a single pass under --quick) --
    def timed_round():
        lat, bad, _ = run_round(clients, expected)
        assert not bad
        return lat

    benchmark(timed_round)

    emit(
        f"HTTP throughput — {len(clients)} concurrent clients over loopback",
        f"requests/round: {requests_per_round} "
        f"({len(QUERIES)} queries x {len(clients)} clients)\n"
        f"sustained QPS:  {qps:,.0f}\n"
        f"latency p50:    {p50_ms:.2f} ms\n"
        f"latency p99:    {p99_ms:.2f} ms\n"
        f"rows/round:     {expected_rows_per_round:,}\n"
        f"server stats:   {after['requests']} requests, "
        f"{after['rejected']} rejected, {after['timeouts']} timeouts\n"
        f"gate:           zero mismatches, stats reconciled",
    )

    update_bench_json({
        "clients": len(clients),
        "queries_per_client": len(QUERIES),
        "qps": qps,
        "latency_ms": {"p50": p50_ms, "p99": p99_ms},
        "rows_per_round": expected_rows_per_round,
        "server_stats": after,
        "gate": {
            "min_clients": N_CLIENTS,
            "mismatches": 0,
            "reconciled": True,
            "pass": True,
        },
    })


def observed_workers(pool, n_requests: int = 24) -> set:
    """Worker ids stamped on ``/health`` over fresh connections.

    Each request opens its own connection, so the kernel's accept
    balancing decides the worker; over 24 probes every worker of a
    small pool is seen with overwhelming probability."""
    from repro.net.wsgi import WORKER_HEADER

    root = pool.url.rsplit("/", 1)[0]
    seen = set()
    for _ in range(n_requests):
        with urllib.request.urlopen(root + "/health", timeout=10.0) as response:
            response.read()
            worker = response.headers.get(WORKER_HEADER)
            if worker is not None:
                seen.add(worker)
    return seen


def test_worker_scaling(tmp_path):
    """Queries/s across pre-fork pool sizes over sharded SQLite snapshots.

    Gate: zero row mismatches at every pool size, merged coordinator
    ``/stats`` reconciling exactly with the client ledger, and >= 1.6x
    QPS at 2 workers vs 1 on machines with >= 4 cores (relaxed to
    parity-within-noise on smaller hosts, where the client and the
    workers contend for the same cores)."""
    from repro.net import PreforkServer, build_backend_from_spec, prepare_snapshots

    spec = {"scale": "tiny", "seed": 42, "timeout_s": 30.0,
            "execution": "auto", "sapphire": False, "n_shards": 2}
    snapshot_spec = prepare_snapshots(spec, str(tmp_path / "data.sqlite"))

    # Expected rows come from an in-process endpoint over the same
    # read-only snapshot files the workers serve (LIMIT cuts depend on
    # scan order, which differs between memory and SQLite shards).
    origin = build_backend_from_spec(snapshot_spec)
    expected = {query: row_key(origin.select(query)) for query in QUERIES}
    rows_per_round = sum(len(rows) for rows in expected.values()) * N_CLIENTS
    requests_per_round = N_CLIENTS * len(QUERIES)

    qps_by_workers: Dict[int, float] = {}
    for n_workers in WORKER_COUNTS:
        pool = PreforkServer(
            build_backend_from_spec, snapshot_spec, n_workers=n_workers,
            app_kwargs={"max_workers": N_CLIENTS,
                        "queue_limit": 4 * N_CLIENTS},
        )
        pool.start()
        try:
            clients = [
                HttpSparqlEndpoint(pool.url, name=f"w{n_workers}-c{i}",
                                   timeout_s=30.0)
                for i in range(N_CLIENTS)
            ]
            run_round(clients, expected)  # warmup (snapshot page cache)
            if n_workers > 1:
                assert len(observed_workers(pool)) >= 2, \
                    "accept balancing never spread load across workers"

            before = pool.stats()
            started = time.perf_counter()
            for _ in range(SCALING_ROUNDS):
                _, mismatches, rows_seen = run_round(clients, expected)
                assert mismatches == [], "\n".join(mismatches)
                assert rows_seen == rows_per_round
            elapsed = time.perf_counter() - started
            after = pool.stats()

            driven = SCALING_ROUNDS * requests_per_round
            assert after["requests"] - before["requests"] == driven
            assert after["ok"] - before["ok"] == driven
            assert (after["rows_served"] - before["rows_served"]
                    == SCALING_ROUNDS * rows_per_round)
            assert after["n_workers"] == n_workers
            qps_by_workers[n_workers] = driven / elapsed
        finally:
            pool.stop()

    speedup = qps_by_workers[2] / qps_by_workers[1]
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        threshold, basis = 1.6, f"{cpus} cores: near-linear gate"
    else:
        threshold, basis = 0.8, f"{cpus} core(s): relaxed to parity"
    assert speedup >= threshold, (
        f"2-worker speedup {speedup:.2f}x below {threshold}x ({basis})")

    lines = [
        f"  {n} worker(s): {qps_by_workers[n]:,.0f} queries/s"
        for n in WORKER_COUNTS
    ]
    emit(
        "Worker-count scaling — pre-fork pool, 2-shard SQLite snapshots",
        "\n".join(lines) + "\n"
        f"2-worker speedup: {speedup:.2f}x (gate {threshold}x, {basis})\n"
        f"gate:             zero mismatches, merged /stats reconciled",
    )

    update_bench_json({
        "shards": 2,
        "clients": N_CLIENTS,
        "rounds": SCALING_ROUNDS,
        "qps_by_workers": {str(n): qps_by_workers[n] for n in WORKER_COUNTS},
        "speedup_2_workers": speedup,
        "gate": {"threshold": threshold, "cpus": cpus, "pass": True},
    }, section="worker_scaling")


def test_overload_sheds_load_cleanly(stack):
    """Past the admission limit the server answers 503 (never hangs or
    drops the connection), and the counters account for every request."""
    server, clients, expected = stack
    tight = SparqlHttpServer(
        server.app.backend, max_workers=1, queue_limit=1, deadline_s=5.0
    ).start()
    try:
        hammer = [
            HttpSparqlEndpoint(tight.url, name=f"h{i}", max_retries=0,
                               timeout_s=30.0)
            for i in range(2 * N_CLIENTS)
        ]

        def drive(client) -> str:
            from repro.endpoint.endpoint import QueryRejected

            try:
                client.select(QUERIES[2])
                return "ok"
            except QueryRejected:
                return "rejected"

        with ThreadPoolExecutor(max_workers=len(hammer)) as pool:
            outcomes = list(pool.map(drive, hammer))
        stats = fetch_stats(tight)
        # Every request is accounted for: served or cleanly rejected.
        assert outcomes.count("ok") + outcomes.count("rejected") == len(hammer)
        assert outcomes.count("ok") >= 1
        assert stats["ok"] == outcomes.count("ok")
        assert stats["rejected"] == outcomes.count("rejected")
        assert stats["requests"] == len(hammer)
    finally:
        tight.stop()


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
