"""A3 — ablation: the Steiner-tree relaxation's weights and budget.

Section 6.2.2 chooses w_q < w_default so that paths matching the user's
predicates win, and caps graph expansion at 100 SPARQL queries.  This
ablation reruns the Figure 6 repair under:

* equal weights (w_q = w_default) — the search may settle on a
  semantically wrong shortest path or explore more before finding the
  author/publisher path,
* a sweep of expansion budgets — too small a budget fails to connect the
  literals at all; the default connects with plenty of headroom.
"""

from __future__ import annotations

import dataclasses


from repro.core import StructureRelaxer
from repro.eval import format_table
from repro.rdf import DBO, Literal, TriplePattern, Variable
from repro.sparql.serializer import select_query

from conftest import emit


def _figure6_query():
    return select_query([
        TriplePattern(Variable("book"), DBO.term("writer"), Literal("Jack Kerouac", lang="en")),
        TriplePattern(Variable("book"), DBO.publisher, Literal("Viking Press", lang="en")),
    ])


def test_weight_ablation(small_server, capsys, benchmark):
    def sweep():
        rows = []
        for w_q, w_default in ((1.0, 2.0), (1.0, 1.0), (2.0, 1.0)):
            config = dataclasses.replace(small_server.config, w_q=w_q, w_default=w_default)
            relaxer = StructureRelaxer(small_server.cache, small_server._run_ast, config)
            suggestions = relaxer.relax(_figure6_query())
            uses_gold_path = any(
                "author" in s.query_text and "publisher" in s.query_text
                for s in suggestions
            )
            rows.append({
                "w_q": w_q,
                "w_default": w_default,
                "suggestions": len(suggestions),
                "queries_used": suggestions[0].queries_used if suggestions else "-",
                "author/publisher path": uses_gold_path,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A3.1 — edge-weight ablation on the Figure 6 repair "
             "(paper: w_q < w_default)", format_table(rows))
    paper_setting = rows[0]
    assert paper_setting["author/publisher path"]


def test_budget_sweep(small_server, capsys, benchmark):
    def sweep():
        rows = []
        for budget in (2, 5, 10, 25, 50, 100):
            config = dataclasses.replace(
                small_server.config, relaxation_query_budget=budget
            )
            relaxer = StructureRelaxer(small_server.cache, small_server._run_ast, config)
            suggestions = relaxer.relax(_figure6_query())
            rows.append({
                "budget": budget,
                "connected": bool(suggestions),
                "queries_used": suggestions[0].queries_used if suggestions else "-",
                "answers": suggestions[0].n_answers if suggestions else 0,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A3.2 — expansion-budget sweep (paper: 100 queries)",
             format_table(rows))
    assert not rows[0]["connected"]       # 2 queries cannot connect
    assert rows[-1]["connected"]          # the paper's budget connects
    # A connected run never overruns its budget, and the repaired query
    # finds the same answers regardless of the (sufficient) budget.
    for row in rows:
        if row["connected"]:
            assert row["queries_used"] <= row["budget"]
    answers = {row["answers"] for row in rows if row["connected"]}
    assert len(answers) == 1


def test_seed_group_size_sweep(small_server, capsys, benchmark):
    """More alternative-literal seeds per group widen the search frontier;
    the connection must remain stable across group sizes."""
    def sweep():
        rows = []
        for size in (1, 2, 3, 5):
            config = dataclasses.replace(small_server.config, seed_group_size=size)
            relaxer = StructureRelaxer(small_server.cache, small_server._run_ast, config)
            query = _figure6_query()
            alternatives = {
                Literal("Viking Press", lang="en"): [Literal("Viking Pres", lang="en")],
            }
            groups = relaxer.seed_groups(query, alternatives)
            suggestions = relaxer.relax(query, alternatives)
            rows.append({
                "seed_group_size": size,
                "seeds_total": sum(len(g) for g in groups),
                "connected": bool(suggestions),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A3.3 — seed-group size sweep (paper: literal + top k-1 alternatives)",
             format_table(rows))
    assert all(row["connected"] for row in rows)
    seeds = [row["seeds_total"] for row in rows]
    assert seeds == sorted(seeds)
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
