"""E8 — Section 5's initialization cost report.

The paper's reference point (DBpedia): ~800 literal-retrieval queries +
~3000 significance queries, ~200 timeouts, a 43K-string suffix tree, 21M
residual literals in 80 bins, 17 hours end-to-end.  Our dataset is ~3
orders of magnitude smaller; the *shape* that must reproduce:

* decomposed initialization issues many queries, a minority time out,
* significance queries outnumber plain literal queries,
* the suffix tree holds a small fraction of all cached literals,
* the warehouse architecture needs a handful of queries and no timeouts.
"""

from __future__ import annotations


from repro.core import SapphireConfig, initialize_endpoint
from repro.endpoint import EndpointConfig, SparqlEndpoint
from repro.eval import format_table

from conftest import emit


def _fresh_endpoint(dataset, **kwargs):
    defaults = dict(timeout_s=0.045, cost_units_per_second=20_000)
    defaults.update(kwargs)
    return SparqlEndpoint(dataset.store, EndpointConfig(**defaults), name="bench")


def test_initialization_report(small_dataset, capsys, benchmark):
    endpoint = _fresh_endpoint(small_dataset)
    cache, report = benchmark.pedantic(
        initialize_endpoint,
        args=(endpoint,), kwargs={"config": SapphireConfig(suffix_tree_capacity=800)},
        rounds=1, iterations=1,
    )
    rows = [
        {"metric": "setup queries (Q1–Q5)", "value": report.n_setup_queries, "paper (DBpedia)": "a few"},
        {"metric": "literal queries (Q6/Q7)", "value": report.n_literal_queries, "paper (DBpedia)": "~800"},
        {"metric": "significance queries (Q8)", "value": report.n_significance_queries, "paper (DBpedia)": "~3000"},
        {"metric": "timeouts", "value": report.n_timeouts, "paper (DBpedia)": "~200"},
        {"metric": "suffix-tree strings", "value": cache.n_tree_strings, "paper (DBpedia)": "43K"},
        {"metric": "residual literals", "value": cache.n_residual_literals, "paper (DBpedia)": "21M"},
        {"metric": "residual bins", "value": cache.n_residual_bins, "paper (DBpedia)": "80"},
        {"metric": "simulated endpoint seconds", "value": round(report.simulated_seconds, 1), "paper (DBpedia)": "17 hours"},
    ]
    with capsys.disabled():
        emit("E8 — initialization cost (federated architecture)", format_table(rows))
    assert report.total_queries > 20
    assert report.n_timeouts > 0
    assert cache.n_tree_strings < cache.n_literals  # tree holds a subset
    assert cache.n_residual_bins > 5


def test_initialization_warehouse_vs_federated(small_dataset, capsys, benchmark):
    federated_ep = _fresh_endpoint(small_dataset)
    _, federated = benchmark.pedantic(
        initialize_endpoint,
        args=(federated_ep,), kwargs={"config": SapphireConfig(suffix_tree_capacity=800)},
        rounds=1, iterations=1,
    )
    warehouse_ep = SparqlEndpoint(small_dataset.store, EndpointConfig.warehouse(), name="wh")
    _, warehouse = initialize_endpoint(
        warehouse_ep, SapphireConfig(suffix_tree_capacity=800), warehouse=True
    )
    rows = [
        {"architecture": "federated", "queries": federated.total_queries,
         "timeouts": federated.n_timeouts},
        {"architecture": "warehouse", "queries": warehouse.total_queries,
         "timeouts": warehouse.n_timeouts},
    ]
    with capsys.disabled():
        emit("E8.2 — federated vs warehouse initialization", format_table(rows))
    assert warehouse.total_queries < federated.total_queries
    assert warehouse.n_timeouts == 0


def test_query_budget_prioritizes_frequent_predicates(small_dataset, capsys, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for limit in (30, 60, 120, None):
        endpoint = _fresh_endpoint(small_dataset)
        cache, report = initialize_endpoint(
            endpoint,
            SapphireConfig(init_query_limit=limit, suffix_tree_capacity=800),
        )
        rows.append({
            "query_limit": limit if limit is not None else "unlimited",
            "queries_issued": report.total_queries,
            "literals_cached": cache.n_literals,
        })
    with capsys.disabled():
        emit("E8.3 — literal coverage vs the user-set query limit", format_table(rows))
    coverage = [row["literals_cached"] for row in rows]
    assert coverage[-1] >= coverage[0]  # more budget, more coverage


def test_bench_initialization(benchmark, small_dataset):
    def run():
        endpoint = _fresh_endpoint(small_dataset)
        return initialize_endpoint(endpoint, SapphireConfig(suffix_tree_capacity=800))

    cache, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cache.n_literals > 0
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
