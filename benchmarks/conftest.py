"""Shared benchmark fixtures.

The benchmarks reproduce the paper's tables and figures; each prints the
rows/series the paper reports (visible in the pytest-benchmark run via
``-s`` or in ``bench_output.txt``) and times the underlying computation
with pytest-benchmark.

Two dataset scales are provided: ``small`` (the default experiment
substrate, ~50k triples) and ``tiny`` (for the interaction-heavy
harnesses like the user study).
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

import pytest

from repro import EndpointConfig, SapphireConfig, SapphireServer, SparqlEndpoint
from repro.data import DatasetConfig, build_dataset


def bench_main(bench_file: str, argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for the pytest-benchmark suites.

    Every ``bench_*.py`` in this directory is runnable directly
    (``python benchmarks/bench_qsm.py``); ``--quick`` disables the
    pytest-benchmark timing rounds so CI can smoke the full suite in
    seconds — each scenario still executes once and all its report
    assertions still run.
    """
    parser = argparse.ArgumentParser(
        description="Run this benchmark file through pytest."
    )
    parser.add_argument("--quick", action="store_true",
                        help="single pass, no timing rounds (CI smoke run)")
    parser.add_argument("-k", default=None, metavar="EXPR",
                        help="pytest -k selection expression")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH "
                             "(suites that support it, e.g. bench_http_throughput)")
    parser.add_argument("--scale", type=int, default=None, metavar="N",
                        help="lexicon scale factor for suites that grow the "
                             "cache synthetically (bench_qcm's tiered-index "
                             "gates run at 10x and 100x)")
    args = parser.parse_args(argv)
    if args.json:
        # The suite runs inside pytest; the path travels via environment.
        os.environ["BENCH_JSON"] = os.path.abspath(args.json)
    if args.scale is not None:
        if args.scale < 1:
            parser.error("--scale must be >= 1")
        os.environ["BENCH_SCALE"] = str(args.scale)
    pytest_args = [bench_file, "-q"]
    if args.quick:
        pytest_args.append("--benchmark-disable")
    if args.k:
        pytest_args.extend(["-k", args.k])
    return pytest.main(pytest_args)


@pytest.fixture(scope="session")
def small_dataset():
    return build_dataset(DatasetConfig.small())


@pytest.fixture(scope="session")
def tiny_dataset():
    return build_dataset(DatasetConfig.tiny())


@pytest.fixture(scope="session")
def small_server(small_dataset):
    endpoint = SparqlEndpoint(
        small_dataset.store, EndpointConfig(timeout_s=1.0), name="dbpedia-mini"
    )
    server = SapphireServer(SapphireConfig(suffix_tree_capacity=2000))
    server.register_endpoint(endpoint)
    return server


@pytest.fixture(scope="session")
def tiny_server(tiny_dataset):
    endpoint = SparqlEndpoint(
        tiny_dataset.store, EndpointConfig(timeout_s=1.0), name="dbpedia-tiny"
    )
    server = SapphireServer(SapphireConfig(suffix_tree_capacity=500))
    server.register_endpoint(endpoint)
    return server


def emit(title: str, body: str) -> None:
    """Print a report block (survives pytest capture in the tee'd log)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n", flush=True)
