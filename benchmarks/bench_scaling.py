"""A4 — ablation: dataset-size scaling.

The paper argues its design scales to LOD-cloud-sized data (DBpedia's 70M
literals) because every interactive path is sublinear: suffix-tree lookup
is O(|t| + z), the bin scan is windowed by γ, and initialization cost is
bounded by the query budget rather than dataset size.  This ablation
builds three dataset scales and measures how initialization and QCM
latency actually grow.

Expected shape: triples grow ~10× tiny -> medium while QCM latency stays
flat (tree lookups) or grows far sublinearly (bin windows), and the
initialization query count grows with the predicate/class structure, not
with raw triple count.
"""

from __future__ import annotations

import time


from repro.core import QueryCompletionModule, SapphireConfig, initialize_endpoint
from repro.data import DatasetConfig, build_dataset
from repro.endpoint import EndpointConfig, SparqlEndpoint
from repro.eval import format_table

from conftest import emit

TERMS = ["Kenn", "spou", "New", "press", "birth", "univ"]


def test_dataset_scaling(capsys, benchmark):
    def sweep():
        rows = []
        for name, config in (("tiny", DatasetConfig.tiny()),
                             ("small", DatasetConfig.small()),
                             ("medium", DatasetConfig.medium())):
            t0 = time.perf_counter()
            dataset = build_dataset(config)
            build_s = time.perf_counter() - t0
            endpoint = SparqlEndpoint(dataset.store, EndpointConfig(timeout_s=1.0))
            t0 = time.perf_counter()
            cache, report = initialize_endpoint(
                endpoint, SapphireConfig(suffix_tree_capacity=2000)
            )
            init_s = time.perf_counter() - t0
            qcm = QueryCompletionModule(cache)
            t0 = time.perf_counter()
            for term in TERMS:
                qcm.complete(term)
            qcm_ms = (time.perf_counter() - t0) / len(TERMS) * 1000
            rows.append({
                "scale": name,
                "triples": len(dataset.store),
                "init_queries": report.total_queries,
                "literals_cached": cache.n_literals,
                "build_s": round(build_s, 2),
                "init_wall_s": round(init_s, 2),
                "qcm_ms": round(qcm_ms, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A4 — dataset-size scaling", format_table(rows))

    triples = [row["triples"] for row in rows]
    assert triples == sorted(triples)
    growth = triples[-1] / triples[0]
    qcm_growth = rows[-1]["qcm_ms"] / max(rows[0]["qcm_ms"], 1e-6)
    # QCM latency grows far sublinearly in dataset size.
    assert qcm_growth < growth / 2
    # Initialization queries track structure, not raw triples.
    query_growth = rows[-1]["init_queries"] / rows[0]["init_queries"]
    assert query_growth < growth
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
