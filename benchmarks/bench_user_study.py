"""E2–E5 — Figures 8, 9, 10, 11: the simulated user study.

Sixteen simulated participants answer the Appendix B questions with both
Sapphire and QAKiS.  Expected shapes (paper):

* Fig 8 — comparable success on easy; Sapphire ≫ QAKiS on medium and
  difficult (paper: ~80% vs ~50% medium, ~80% vs ~35% difficult).
* Fig 9 — every question answered by ≥1 participant with Sapphire;
  QAKiS misses many medium/difficult questions.
* Fig 10 — attempts comparable (Sapphire slightly higher).
* Fig 11 — Sapphire costs more minutes per answered question.
"""

from __future__ import annotations

import pytest

from repro.baselines import QAKiS
from repro.data.corpus import RELATIONAL_PATTERNS
from repro.eval import UserStudy, format_grouped_bars

from conftest import emit

_DIFFICULTIES = ("easy", "medium", "difficult")


@pytest.fixture(scope="module")
def study_results(tiny_server, tiny_dataset):
    qakis = QAKiS(tiny_dataset.store, RELATIONAL_PATTERNS)
    return UserStudy(tiny_server, qakis, n_participants=16, seed=7).run()


def _grouped(results, fn):
    return {
        d: {"QAKiS": fn("qakis", d), "Sapphire": fn("sapphire", d)}
        for d in _DIFFICULTIES
    }


def test_figure8_success_rate(study_results, capsys, benchmark):
    benchmark.pedantic(lambda: _grouped(study_results, study_results.success_rate),
                       rounds=1, iterations=1)
    with capsys.disabled():
        emit("Figure 8 — success rate of answering questions (% ± 95% CI)",
             format_grouped_bars(_grouped(study_results, study_results.success_rate),
                                 unit="%"))
    for difficulty in ("medium", "difficult"):
        sapphire, _ = study_results.success_rate("sapphire", difficulty)
        qakis, _ = study_results.success_rate("qakis", difficulty)
        assert sapphire > qakis + 20, difficulty  # the paper's wide gap
    easy_sapphire, _ = study_results.success_rate("sapphire", "easy")
    easy_qakis, _ = study_results.success_rate("qakis", "easy")
    assert abs(easy_sapphire - easy_qakis) < 30  # close on easy


def test_figure9_answered_by_any(study_results, capsys, benchmark):
    benchmark.pedantic(lambda: study_results.answered_by_any("sapphire", "easy"),
                       rounds=1, iterations=1)
    rows = {
        d: {"QAKiS": (study_results.answered_by_any("qakis", d), 0.0),
            "Sapphire": (study_results.answered_by_any("sapphire", d), 0.0)}
        for d in _DIFFICULTIES
    }
    with capsys.disabled():
        emit("Figure 9 — % of questions answered by at least one participant",
             format_grouped_bars(rows, unit="%"))
    for difficulty in _DIFFICULTIES:
        assert study_results.answered_by_any("sapphire", difficulty) == 100.0
    assert study_results.answered_by_any("qakis", "difficult") < 50.0


def test_figure10_attempts(study_results, capsys, benchmark):
    benchmark.pedantic(lambda: _grouped(study_results, study_results.mean_attempts),
                       rounds=1, iterations=1)
    with capsys.disabled():
        emit("Figure 10 — average number of attempts before finding an answer",
             format_grouped_bars(_grouped(study_results, study_results.mean_attempts)))
    for difficulty in _DIFFICULTIES:
        sapphire, _ = study_results.mean_attempts("sapphire", difficulty)
        assert 1.0 <= sapphire <= 5.0  # comparable, not exploding


def test_figure11_time_spent(study_results, capsys, benchmark):
    benchmark.pedantic(lambda: _grouped(study_results, study_results.mean_minutes),
                       rounds=1, iterations=1)
    with capsys.disabled():
        emit("Figure 11 — average minutes spent on answered questions",
             format_grouped_bars(_grouped(study_results, study_results.mean_minutes),
                                 unit="min"))
    for difficulty in _DIFFICULTIES:
        sapphire, _ = study_results.mean_minutes("sapphire", difficulty)
        qakis, _ = study_results.mean_minutes("qakis", difficulty)
        if qakis > 0:  # only when QAKiS answered anything in this bucket
            assert sapphire > qakis  # Sapphire costs more time


def test_bench_user_study(benchmark, tiny_server, tiny_dataset):
    qakis = QAKiS(tiny_dataset.store, RELATIONAL_PATTERNS)

    def run_study():
        return UserStudy(tiny_server, qakis, n_participants=4, seed=1).run()

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)
    assert results.records
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
