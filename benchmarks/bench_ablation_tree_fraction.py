"""A1 — ablation: how much of the cache belongs in the suffix tree?

Section 5.2's design choice: the tree is fast but an order of magnitude
larger than its input, so only the *significant* literals get indexed.
This ablation sweeps the tree capacity from "predicates only" to "all
literals" and reports, per setting: tree size (node count, the memory
proxy), hit ratio over the study lookup mix, and mean completion latency.

Expected shape: hit ratio and latency improve with tree size while node
count grows roughly linearly — the knee justifies indexing only the top
significant literals.
"""

from __future__ import annotations

import time


from repro.core import QueryCompletionModule
from repro.eval import format_table

from conftest import emit

LOOKUP_TERMS = [
    "Kenn", "spou", "alma", "New", "Vik", "pop", "birth", "Sydn",
    "label", "press", "gold", "to",
]


def test_tree_fraction_sweep(small_server, capsys, benchmark):
    cache = small_server.cache
    n_literals = cache.n_literals
    capacities = [0, n_literals // 20, n_literals // 5, n_literals // 2, n_literals * 2]

    def sweep():
        rows = []
        for capacity in capacities:
            sized = cache.copy_with_capacity(capacity)
            qcm = QueryCompletionModule(sized, sized.config.with_processes(2))
            t0 = time.perf_counter()
            hits = sum(1 for term in LOOKUP_TERMS if qcm.complete(term).tree_hit)
            elapsed = time.perf_counter() - t0
            rows.append({
                "tree_capacity": capacity,
                "tree_strings": sized.n_tree_strings,
                "tree_nodes": sized.tree.node_count(),
                "residual": sized.n_residual_literals,
                "hit_ratio": f"{100 * hits / len(LOOKUP_TERMS):.0f}%",
                "mean_ms": round(elapsed / len(LOOKUP_TERMS) * 1000, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A1 — suffix-tree fraction ablation", format_table(rows))

    node_counts = [row["tree_nodes"] for row in rows]
    assert node_counts == sorted(node_counts)  # memory grows with capacity
    hit_first = int(rows[0]["hit_ratio"].rstrip("%"))
    hit_last = int(rows[-1]["hit_ratio"].rstrip("%"))
    assert hit_last >= hit_first  # and hit ratio does not degrade
    # With everything indexed there are no residual literals left.
    assert rows[-1]["residual"] == 0
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
