"""A2 — ablation: the PUM's tuning constants (γ, θ, α/β, similarity).

The paper fixes γ = 10 (completion window), θ = 0.7 (JW threshold) and
α = 2 / β = 3 (alternative-literal window) without sweeps.  This ablation
regenerates the trade-off curves that justify them:

* γ: larger windows recall more completions but scan more literals,
* θ: lower thresholds find more alternatives but admit junk (measured as
  suggestions whose queries return no answers — wasted executions),
* similarity measure: JW vs Levenshtein vs Jaro on the Figure 2 repair
  task ('Kennedys' must rank 'Kennedy' first).
"""

from __future__ import annotations


from repro.core import AlternativeTermsFinder, QueryCompletionModule
from repro.eval import format_table
from repro.rdf import Literal
from repro.text import SIMILARITY_MEASURES

from conftest import emit

PREFIXES = ["Kenn", "New", "Vik", "Sydn", "press", "gold"]


def test_gamma_sweep(small_server, capsys, benchmark):
    import dataclasses

    cache = small_server.cache

    def sweep():
        rows = []
        for gamma in (0, 2, 5, 10, 20, 40):
            config = dataclasses.replace(small_server.config, gamma=gamma)
            qcm = QueryCompletionModule(cache, config)
            found = sum(len(qcm.complete(prefix)) for prefix in PREFIXES)
            searched = sum(
                qcm.complete(prefix).bins_searched_fraction for prefix in PREFIXES
            ) / len(PREFIXES)
            rows.append({
                "gamma": gamma,
                "completions": found,
                "bins_scanned": f"{100 * searched:.1f}%",
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A2.1 — completion window γ (paper uses 10)", format_table(rows))
    completions = [row["completions"] for row in rows]
    assert completions == sorted(completions)  # monotone recall in γ
    scanned = [float(row["bins_scanned"].rstrip("%")) for row in rows]
    assert scanned[-1] >= scanned[0]  # paid for with wider scans


def test_theta_sweep(small_server, capsys, benchmark):
    import dataclasses

    cache = small_server.cache

    def sweep():
        rows = []
        for theta in (0.5, 0.6, 0.7, 0.8, 0.9):
            config = dataclasses.replace(small_server.config, theta=theta,
                                         max_alternatives_per_term=50)
            finder = AlternativeTermsFinder(cache, small_server._run_ast, config)
            candidates = finder.literal_alternatives(Literal("Kennedys", lang="en"))
            has_gold = any(entry.surface == "Kennedy" for entry, _ in candidates)
            rows.append({
                "theta": theta,
                "candidates": len(candidates),
                "contains 'Kennedy'": has_gold,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A2.2 — JW threshold θ (paper uses 0.7)", format_table(rows))
    counts = [row["candidates"] for row in rows]
    assert counts == sorted(counts, reverse=True)  # stricter θ, fewer candidates
    at_paper_theta = next(row for row in rows if row["theta"] == 0.7)
    assert at_paper_theta["contains 'Kennedy'"]


def test_similarity_measure_comparison(small_server, capsys, benchmark):
    """Jaro–Winkler 'outperforms other similarity measures in our
    context' (Section 6.2.1): on the misspelling-repair task the right
    literal must rank first."""
    cache = small_server.cache
    tasks = [("Kennedys", "Kennedy"), ("Sydny", "Sydney"), ("Viking Pres", "Viking Press")]

    def compare():
        rows = []
        for name, measure in SIMILARITY_MEASURES.items():
            top1 = 0
            for typed, gold in tasks:
                window = [s for s in cache.literal_surfaces() + cache.tree_literal_surfaces()
                          if abs(len(s) - len(typed)) <= 3]
                ranked = sorted(set(window), key=lambda s: -measure(typed.lower(), s))
                if ranked and ranked[0] == gold.lower():
                    top1 += 1
            rows.append({"measure": name, "top-1 repairs": f"{top1}/{len(tasks)}"})
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    with capsys.disabled():
        emit("A2.3 — similarity measures on the misspelling-repair task",
             format_table(rows))
    jw = next(row for row in rows if row["measure"] == "jaro_winkler")
    for row in rows:
        assert jw["top-1 repairs"] >= row["top-1 repairs"]
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
