"""E1 — Table 1: system comparison on the QALD-style workload.

Regenerates the paper's Table 1: the five systems implemented here are
measured; the five QALD-5 participants that are not publicly runnable are
quoted.  Expected shape (paper): Sapphire tops every column with
P = 1.0; KBQA has P = 1.0 but low recall; S4 beats the NL systems;
SPARQLByE processes the fewest questions.
"""

from __future__ import annotations

import pytest

from repro.eval import format_table, run_comparison

from conftest import emit


@pytest.fixture(scope="module")
def comparison(tiny_server, tiny_dataset):
    return run_comparison(tiny_server, tiny_dataset.store)


def test_table1_report(comparison, capsys, benchmark):
    rows = benchmark.pedantic(
        comparison.table_rows, kwargs={"include_published": True},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        emit("Table 1 — QALD-style comparison (measured + published rows)",
             format_table(rows))
    sapphire = comparison.measured["Sapphire"]
    others = [m for name, m in comparison.measured.items() if name != "Sapphire"]
    # Shape assertions from the paper:
    assert sapphire.precision == 1.0
    assert all(sapphire.recall >= m.recall for m in others)
    assert all(sapphire.f1 >= m.f1 for m in others)
    assert comparison.measured["KBQA"].precision == 1.0
    assert comparison.measured["KBQA"].recall < sapphire.recall
    assert comparison.measured["S4"].recall > comparison.measured["KBQA"].recall
    assert comparison.measured["SPARQLByE"].processed_fraction == min(
        m.processed_fraction for m in comparison.measured.values()
    )


def test_bench_table1(benchmark, tiny_server, tiny_dataset):
    """Time one full comparison run (all five systems, all questions)."""
    result = benchmark.pedantic(
        run_comparison, args=(tiny_server, tiny_dataset.store),
        rounds=1, iterations=1,
    )
    assert result.measured["Sapphire"].recall > 0.9
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
