#!/usr/bin/env python3
"""Encoded-store benchmark: dictionary IDs vs seed-style term keys.

Compares three storage engines on the hot paths of the interactive loop:

* ``seed-terms`` — a faithful inline copy of the pre-encoding store
  (three nested dicts keyed by whole term objects) driven by the seed's
  backtracking join, kept here as the baseline,
* ``encoded-memory`` — the dictionary-encoded in-memory backend behind
  today's :class:`~repro.store.TripleStore`,
* ``encoded-sqlite`` — the same store on the persistent SQLite backend.

Three workloads, each over the eight triple-pattern shapes probed with
constants sampled from the data:

* **match(ids)** — enumerate matching rows the way the query engine
  consumes them.  The encoded stores stream integer ID rows
  (``match_ids``); the seed store has no ID representation, so its
  native row *is* the materialized triple — that asymmetry is precisely
  the point of dictionary encoding.
* **match(terms)** — force full term materialization (``match``) on
  every engine; bounds the decode overhead of the encoded stores.
* **join** — multi-pattern BGPs through each engine's join loop.

Row counts are asserted equal across engines before any timing is
reported, so a speedup can never come from silently matching less.

Run:  PYTHONPATH=src python benchmarks/bench_store_encoding.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.data import DatasetConfig, build_dataset
from repro.rdf import Triple, TriplePattern, Variable
from repro.rdf.terms import Term, is_concrete
from repro.sparql.evaluator import QueryEvaluator
from repro.sparql.parser import parse_query
from repro.store import MemoryBackend, SQLiteBackend, TripleStore

V = Variable

JOIN_QUERIES = [
    'SELECT ?w WHERE { ?t foaf:name "Tom Hanks"@en . ?t dbo:spouse ?w }',
    "SELECT ?s ?n WHERE { ?s a dbo:Person . ?s foaf:surname ?n }",
    "SELECT ?s ?c WHERE { ?s dbo:birthPlace ?c . ?c a dbo:City }",
    "SELECT ?a ?b WHERE { ?a dbo:spouse ?b . ?b dbo:almaMater ?u }",
]


class SeedTermStore:
    """The pre-encoding store: SPO/POS/OSP dicts keyed by term objects."""

    def __init__(self, triples) -> None:
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0
        for triple in triples:
            objects = self._spo[triple.subject][triple.predicate]
            if triple.object not in objects:
                objects.add(triple.object)
                self._pos[triple.predicate][triple.object].add(triple.subject)
                self._osp[triple.object][triple.subject].add(triple.predicate)
                self._size += 1

    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        s = pattern.subject if is_concrete(pattern.subject) else None
        p = pattern.predicate if is_concrete(pattern.predicate) else None
        o = pattern.object if is_concrete(pattern.object) else None
        if s is not None and p is not None and o is not None:
            if o in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, o)
        elif s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)
        elif p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
        elif s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
        elif s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield Triple(s, pred, obj)
        elif p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
        elif o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
        else:
            for s_, by_p in self._spo.items():
                for p_, objects in by_p.items():
                    for o_ in objects:
                        yield Triple(s_, p_, o_)

    def solve(self, patterns: List[TriplePattern]) -> Iterator[dict]:
        """The seed evaluator's backtracking join (bind + match + extend)."""

        def backtrack(index: int, binding: dict) -> Iterator[dict]:
            if index == len(patterns):
                yield binding
                return
            pattern = patterns[index].bind(binding)
            for triple in self.match(pattern):
                extension = pattern.match(triple)
                if extension is None:
                    continue
                merged = dict(binding)
                merged.update(extension)
                yield from backtrack(index + 1, merged)

        yield from backtrack(0, {})


def _sample_patterns(triples: List[Triple], n: int, seed: int) -> List[TriplePattern]:
    rng = random.Random(seed)
    shapes = [
        lambda t: TriplePattern(t.subject, t.predicate, t.object),
        lambda t: TriplePattern(t.subject, t.predicate, V("o")),
        lambda t: TriplePattern(V("s"), t.predicate, t.object),
        lambda t: TriplePattern(t.subject, V("p"), t.object),
        lambda t: TriplePattern(t.subject, V("p"), V("o")),
        lambda t: TriplePattern(V("s"), t.predicate, V("o")),
        lambda t: TriplePattern(V("s"), V("p"), t.object),
    ]
    return [shapes[i % len(shapes)](rng.choice(triples)) for i in range(n)]


def _match_ids_workload(store: TripleStore, patterns: List[TriplePattern]) -> int:
    """Enumerate ID rows for every pattern — no term materialization."""
    total = 0
    for pattern in patterns:
        s, p, o = (
            entry if isinstance(entry, int) else None
            for entry in store.encode_pattern(pattern)
        )
        total += sum(1 for _ in store.match_ids(s, p, o))
    return total


def _time_best(fn, repeat: int) -> Tuple[float, int]:
    best, rows = float("inf"), 0
    for _ in range(repeat):
        t0 = time.perf_counter()
        rows = fn()
        best = min(best, time.perf_counter() - t0)
    return best, rows


def run(
    scale: str,
    n_patterns: int,
    repeat: int,
    seed: int = 42,
    json_path: Optional[str] = None,
) -> int:
    config = DatasetConfig.tiny() if scale == "tiny" else DatasetConfig.small()
    dataset = build_dataset(config)
    triples = list(dataset.store.triples())
    patterns = _sample_patterns(triples, n_patterns, seed)
    parsed = [parse_query(q) for q in JOIN_QUERIES]

    seed_store = SeedTermStore(triples)
    encoded = TripleStore(triples, backend=MemoryBackend())
    persistent = TripleStore(triples, backend=SQLiteBackend(":memory:"))

    engines = [
        # (name, match-by-ids, match-with-terms, join)
        ("seed-terms",
         lambda: sum(1 for p in patterns for _ in seed_store.match(p)),
         lambda: sum(1 for p in patterns for _ in seed_store.match(p)),
         lambda: sum(1 for q in parsed for _ in seed_store.solve(list(q.where.patterns)))),
        # execution="backtrack": this benchmark isolates the storage
        # encoding, so both encoded engines keep the seed's backtracking
        # join (bench_join_planner.py measures the planner itself).
        ("encoded-memory",
         lambda: _match_ids_workload(encoded, patterns),
         lambda: sum(1 for p in patterns for _ in encoded.match(p)),
         lambda: sum(len(QueryEvaluator(encoded, execution="backtrack").evaluate(q).rows)
                     for q in parsed)),
        ("encoded-sqlite",
         lambda: _match_ids_workload(persistent, patterns),
         lambda: sum(1 for p in patterns for _ in persistent.match(p)),
         lambda: sum(len(QueryEvaluator(persistent, execution="backtrack").evaluate(q).rows)
                     for q in parsed)),
    ]

    # Parity gate: identical row counts everywhere before timing anything.
    id_counts = {name: ids() for name, ids, _, _ in engines}
    term_counts = {name: terms() for name, _, terms, _ in engines}
    join_counts = {name: join() for name, _, _, join in engines}
    if len({*id_counts.values(), *term_counts.values()}) != 1 or \
            len(set(join_counts.values())) != 1:
        print(f"PARITY FAILURE: ids={id_counts} terms={term_counts} join={join_counts}")
        return 1

    print(f"dataset: {scale} ({len(triples):,} triples), "
          f"{n_patterns} sampled patterns, {len(JOIN_QUERIES)} join queries, "
          f"best of {repeat}")
    print(f"parity: {id_counts['seed-terms']:,} matched rows, "
          f"{join_counts['seed-terms']:,} join rows — identical across engines\n")

    header = (f"{'engine':<16} {'ids_s':>8} {'ids_x':>7} {'terms_s':>8} "
              f"{'terms_x':>7} {'join_s':>8} {'join_x':>7}")
    print(header)
    print("-" * len(header))
    baseline: Optional[Tuple[float, float, float]] = None
    speedups = {}
    for name, ids, terms, join in engines:
        ids_s, _ = _time_best(ids, repeat)
        terms_s, _ = _time_best(terms, repeat)
        join_s, _ = _time_best(join, repeat)
        if baseline is None:
            baseline = (ids_s, terms_s, join_s)
        ids_x, terms_x, join_x = (
            b / t if t else float("inf")
            for b, t in zip(baseline, (ids_s, terms_s, join_s))
        )
        speedups[name] = (ids_x, terms_x, join_x)
        print(f"{name:<16} {ids_s:>8.4f} {ids_x:>6.2f}x {terms_s:>8.4f} "
              f"{terms_x:>6.2f}x {join_s:>8.4f} {join_x:>6.2f}x")

    persistent.close()
    ids_x, terms_x, join_x = speedups["encoded-memory"]
    print(f"\nencoded-memory vs seed: match(ids) {ids_x:.2f}x, "
          f"match(terms) {terms_x:.2f}x, join {join_x:.2f}x "
          f"(gate: ids >= 1x and join >= 1x; target: >= 2x)")
    gate_ok = ids_x >= 1.0 and join_x >= 1.0
    if json_path:
        payload = {
            "benchmark": "store_encoding",
            "dataset": {"scale": scale, "triples": len(triples)},
            "repeat": repeat,
            "parity": "ok",
            "results": {
                name: {"ids_x": x[0], "terms_x": x[1], "join_x": x[2]}
                for name, x in speedups.items()
            },
            "gate": {"min_speedup": 1.0, "pass": gate_ok},
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {json_path}")
    if not gate_ok:
        print("REGRESSION: encoded store slower than the seed baseline")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny dataset, fewer samples (CI smoke run)")
    parser.add_argument("--scale", choices=("tiny", "small"), default=None,
                        help="dataset scale (default: small; --quick implies tiny)")
    parser.add_argument("--patterns", type=int, default=None,
                        help="number of sampled match patterns")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (best-of)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH")
    args = parser.parse_args(argv)
    scale = args.scale or ("tiny" if args.quick else "small")
    n_patterns = args.patterns or (100 if args.quick else 400)
    repeat = args.repeat or (2 if args.quick else 3)
    return run(scale, n_patterns, repeat, json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
