"""E6 — Section 7.3.1: QCM response time.

Reproduces the four QCM measurements:

1. suffix-tree lookup latency (paper: ~0.25 ms, independent of tree size),
2. residual-bin scan latency for P ∈ {1, 2, 4, 8} workers
   (paper: 0.6 s at 1 core -> 0.16 s at 8 cores; with CPython threads the
   wall-clock speedup is bounded by the GIL, so we report both wall time
   and the per-worker load balance that drives the real system's scaling),
3. suffix-tree hit ratio as a function of how many literals are indexed
   (paper: 50% hit ratio with only 40K of millions of literals),
4. the fraction of residual literals eliminated by the length filter
   (paper: 46% on average).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import QueryCompletionModule
from repro.eval import format_table

from conftest import emit

#: Metrics accumulated across tests, written as the BENCH_qcm.json CI
#: artifact by test_write_json (which pytest runs last in file order).
METRICS: dict = {"benchmark": "qcm"}

#: Lookup terms modelled on what study participants typed.
LOOKUP_TERMS = [
    "Kenn", "spou", "alma", "New", "Vik", "pop", "birth", "Sydn",
    "label", "press", "gold", "j", "to", "univ",
]


@pytest.fixture(scope="module")
def qcm(small_server):
    return QueryCompletionModule(small_server.cache, small_server.config)


def test_tree_lookup_latency(qcm, capsys, benchmark):
    tree = qcm.cache.tree

    def lookups():
        for term in LOOKUP_TERMS:
            tree.find_containing(term.lower(), limit=10)

    benchmark(lookups)
    if benchmark.stats is not None:
        mean_s = benchmark.stats["mean"]
    else:
        # --benchmark-disable (the --quick smoke run): time one pass.
        t0 = time.perf_counter()
        lookups()
        mean_s = time.perf_counter() - t0
    per_lookup_ms = mean_s / len(LOOKUP_TERMS) * 1000
    METRICS["tree_lookup_ms"] = per_lookup_ms
    METRICS["tree_strings"] = qcm.cache.n_tree_strings
    with capsys.disabled():
        emit("E6.1 — suffix-tree lookup latency",
             f"mean per lookup: {per_lookup_ms:.4f} ms over "
             f"{qcm.cache.n_tree_strings} indexed strings\n"
             f"(paper: ~0.25 ms, independent of tree size)")
    assert per_lookup_ms < 50  # interactive by a wide margin


def test_bin_scan_parallel_scaling(small_server, capsys, benchmark):
    cache = small_server.cache
    rows = []
    for processes in (1, 2, 4, 8):
        qcm = QueryCompletionModule(cache, small_server.config.with_processes(processes))
        t0 = time.perf_counter()
        for term in LOOKUP_TERMS:
            qcm.complete(term)
        elapsed = time.perf_counter() - t0
        rows.append({"workers": processes,
                     "total_s": round(elapsed, 4),
                     "per_lookup_ms": round(elapsed / len(LOOKUP_TERMS) * 1000, 3)})
    METRICS["bin_scan"] = rows
    eight_worker_qcm = QueryCompletionModule(cache, small_server.config.with_processes(8))
    benchmark.pedantic(lambda: [eight_worker_qcm.complete(t) for t in LOOKUP_TERMS],
                       rounds=1, iterations=1)
    with capsys.disabled():
        emit("E6.2 — residual-bin scan vs worker count",
             format_table(rows) +
             "\n(paper: 0.6 s @ 1 core -> 0.16 s @ 8 cores; CPython threads"
             "\n bound the wall-clock gain, the load split is what scales)")
    # Results must be identical regardless of parallelism.
    serial = QueryCompletionModule(cache, small_server.config.with_processes(1))
    parallel = QueryCompletionModule(cache, small_server.config.with_processes(8))
    for term in LOOKUP_TERMS:
        assert serial.complete(term).surfaces() == parallel.complete(term).surfaces()


def test_hit_ratio_vs_tree_size(small_server, capsys, benchmark):
    """Bigger suffix tree -> higher hit ratio (Section 7.3.1's takeaway
    that 'even a small fraction of the literals in the suffix tree
    benefits performance')."""
    cache = small_server.cache
    base_config = small_server.config
    benchmark.pedantic(cache.build_indexes, rounds=1, iterations=1)
    rows = []
    ratios = []
    for capacity in (0, 50, 200, 1000, 4000):
        sized = cache.copy_with_capacity(capacity)
        qcm = QueryCompletionModule(sized, sized.config)
        hits = sum(1 for term in LOOKUP_TERMS if qcm.complete(term).tree_hit)
        ratio = hits / len(LOOKUP_TERMS)
        ratios.append(ratio)
        rows.append({
            "tree_capacity": capacity,
            "indexed_strings": sized.n_tree_strings,
            "hit_ratio": f"{100 * ratio:.0f}%",
        })
    with capsys.disabled():
        emit("E6.3 — suffix-tree hit ratio vs indexed literals",
             format_table(rows) + "\n(paper: 50% hit ratio at 40K of ~21M literals)")
    assert ratios == sorted(ratios) or ratios[-1] >= ratios[0]
    assert ratios[-1] > ratios[0]


def test_length_filter_elimination(qcm, capsys, benchmark):
    """The γ-window removes a large share of the residual literals from
    each scan (paper: 46% on average)."""
    results = benchmark.pedantic(
        lambda: [qcm.complete(term) for term in LOOKUP_TERMS],
        rounds=1, iterations=1,
    )
    fractions = [1.0 - result.bins_searched_fraction for result in results]
    mean_eliminated = sum(fractions) / len(fractions)
    METRICS["length_filter_eliminated"] = mean_eliminated
    with capsys.disabled():
        emit("E6.4 — residual literals eliminated by the length filter",
             f"mean eliminated: {100 * mean_eliminated:.1f}% "
             f"(paper: ~46%)")
    assert mean_eliminated > 0.2


def test_bench_complete(benchmark, qcm):
    result = benchmark(lambda: qcm.complete("Kenn"))
    assert result.surfaces()


def test_write_json(qcm):
    """Write the accumulated metrics as the CI artifact (last in file)."""
    json_path = os.environ.get("BENCH_JSON")
    assert METRICS.get("tree_lookup_ms") is not None
    if not json_path:
        return
    with open(json_path, "w") as handle:
        json.dump(METRICS, handle, indent=2)
    print(f"\nresults written to {json_path}")
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
