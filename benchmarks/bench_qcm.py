"""E6 — Section 7.3.1: QCM response time.

Reproduces the four QCM measurements:

1. suffix-tree lookup latency (paper: ~0.25 ms, independent of tree size),
2. residual-bin scan latency for P ∈ {1, 2, 4, 8} workers
   (paper: 0.6 s at 1 core -> 0.16 s at 8 cores; with CPython threads the
   wall-clock speedup is bounded by the GIL, so we report both wall time
   and the per-worker load balance that drives the real system's scaling),
3. suffix-tree hit ratio as a function of how many literals are indexed
   (paper: 50% hit ratio with only 40K of millions of literals),
4. the fraction of residual literals eliminated by the length filter
   (paper: 46% on average),

and gates the PR-10 tiered suggestion index at a synthetically scaled
lexicon (``--scale N`` grows the literal set to N× the base dataset):

5. **cold start** — booting a tiered replica from the saved v3 file vs
   the eager in-memory rebuild (≥5× faster at 100×),
6. **memory** — the tiered cache's boot footprint is bounded by the
   suffix-tree capacity, not the lexicon,
7. **latency** — tiered completion latency stays within 1.1× of the
   in-memory path at 1× (and must not regress at higher scales).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.core import QueryCompletionModule, load_cache, save_cache
from repro.eval import format_table
from repro.rdf import RDFS_LABEL, Literal

from conftest import emit

#: Metrics accumulated across tests, written as the BENCH_qcm.json CI
#: artifact by test_write_json (which pytest runs last in file order).
METRICS: dict = {"benchmark": "qcm"}

#: Lookup terms modelled on what study participants typed.
LOOKUP_TERMS = [
    "Kenn", "spou", "alma", "New", "Vik", "pop", "birth", "Sydn",
    "label", "press", "gold", "j", "to", "univ",
]


@pytest.fixture(scope="module")
def qcm(small_server):
    return QueryCompletionModule(small_server.cache, small_server.config)


def test_tree_lookup_latency(qcm, capsys, benchmark):
    tree = qcm.cache.tree

    def lookups():
        for term in LOOKUP_TERMS:
            tree.find_containing(term.lower(), limit=10)

    benchmark(lookups)
    if benchmark.stats is not None:
        mean_s = benchmark.stats["mean"]
    else:
        # --benchmark-disable (the --quick smoke run): time one pass.
        t0 = time.perf_counter()
        lookups()
        mean_s = time.perf_counter() - t0
    per_lookup_ms = mean_s / len(LOOKUP_TERMS) * 1000
    METRICS["tree_lookup_ms"] = per_lookup_ms
    METRICS["tree_strings"] = qcm.cache.n_tree_strings
    with capsys.disabled():
        emit("E6.1 — suffix-tree lookup latency",
             f"mean per lookup: {per_lookup_ms:.4f} ms over "
             f"{qcm.cache.n_tree_strings} indexed strings\n"
             f"(paper: ~0.25 ms, independent of tree size)")
    assert per_lookup_ms < 50  # interactive by a wide margin


def test_bin_scan_parallel_scaling(small_server, capsys, benchmark):
    cache = small_server.cache
    rows = []
    for processes in (1, 2, 4, 8):
        qcm = QueryCompletionModule(cache, small_server.config.with_processes(processes))
        t0 = time.perf_counter()
        for term in LOOKUP_TERMS:
            qcm.complete(term)
        elapsed = time.perf_counter() - t0
        rows.append({"workers": processes,
                     "total_s": round(elapsed, 4),
                     "per_lookup_ms": round(elapsed / len(LOOKUP_TERMS) * 1000, 3)})
    METRICS["bin_scan"] = rows
    eight_worker_qcm = QueryCompletionModule(cache, small_server.config.with_processes(8))
    benchmark.pedantic(lambda: [eight_worker_qcm.complete(t) for t in LOOKUP_TERMS],
                       rounds=1, iterations=1)
    with capsys.disabled():
        emit("E6.2 — residual-bin scan vs worker count",
             format_table(rows) +
             "\n(paper: 0.6 s @ 1 core -> 0.16 s @ 8 cores; CPython threads"
             "\n bound the wall-clock gain, the load split is what scales)")
    # Results must be identical regardless of parallelism.
    serial = QueryCompletionModule(cache, small_server.config.with_processes(1))
    parallel = QueryCompletionModule(cache, small_server.config.with_processes(8))
    for term in LOOKUP_TERMS:
        assert serial.complete(term).surfaces() == parallel.complete(term).surfaces()


def test_hit_ratio_vs_tree_size(small_server, capsys, benchmark):
    """Bigger suffix tree -> higher hit ratio (Section 7.3.1's takeaway
    that 'even a small fraction of the literals in the suffix tree
    benefits performance')."""
    cache = small_server.cache
    base_config = small_server.config
    benchmark.pedantic(cache.build_indexes, rounds=1, iterations=1)
    rows = []
    ratios = []
    for capacity in (0, 50, 200, 1000, 4000):
        sized = cache.copy_with_capacity(capacity)
        qcm = QueryCompletionModule(sized, sized.config)
        hits = sum(1 for term in LOOKUP_TERMS if qcm.complete(term).tree_hit)
        ratio = hits / len(LOOKUP_TERMS)
        ratios.append(ratio)
        rows.append({
            "tree_capacity": capacity,
            "indexed_strings": sized.n_tree_strings,
            "hit_ratio": f"{100 * ratio:.0f}%",
        })
    with capsys.disabled():
        emit("E6.3 — suffix-tree hit ratio vs indexed literals",
             format_table(rows) + "\n(paper: 50% hit ratio at 40K of ~21M literals)")
    assert ratios == sorted(ratios) or ratios[-1] >= ratios[0]
    assert ratios[-1] > ratios[0]


def test_length_filter_elimination(qcm, capsys, benchmark):
    """The γ-window removes a large share of the residual literals from
    each scan (paper: 46% on average)."""
    results = benchmark.pedantic(
        lambda: [qcm.complete(term) for term in LOOKUP_TERMS],
        rounds=1, iterations=1,
    )
    fractions = [1.0 - result.bins_searched_fraction for result in results]
    mean_eliminated = sum(fractions) / len(fractions)
    METRICS["length_filter_eliminated"] = mean_eliminated
    with capsys.disabled():
        emit("E6.4 — residual literals eliminated by the length filter",
             f"mean eliminated: {100 * mean_eliminated:.1f}% "
             f"(paper: ~46%)")
    assert mean_eliminated > 0.2


def test_bench_complete(benchmark, qcm):
    result = benchmark(lambda: qcm.complete("Kenn"))
    assert result.surfaces()


def _scale() -> int:
    return max(1, int(os.environ.get("BENCH_SCALE", "1")))


#: Word pool for the synthetic lexicon tail (varied lengths/trigrams).
_WORDS = [
    "harbor", "festival", "museum", "boulevard", "province", "railway",
    "observatory", "cathedral", "archipelago", "university", "stadium",
    "monument",
]


@pytest.fixture(scope="module")
def scaled_index(small_server, tmp_path_factory):
    """``(cache, path)``: the base cache grown to ``--scale``× literals,
    saved as a v3 file with the term index built in."""
    scale = _scale()
    base = small_server.cache
    cache = base.copy_with_capacity(base.config.suffix_tree_capacity)
    n_base = cache.n_literals
    for i in range(n_base * (scale - 1)):
        text = f"{_WORDS[i % len(_WORDS)]} no {i:07d}"
        cache.add_literal(Literal(text, lang="en"), RDFS_LABEL, 0)
    cache.build_indexes()
    path = tmp_path_factory.mktemp("qcm-index") / "cache.sqlite"
    t0 = time.perf_counter()
    info = save_cache(cache, path)
    METRICS["index"] = {
        "scale": scale,
        "lexicon_literals": cache.n_literals,
        "save_s": round(time.perf_counter() - t0, 4),
        "index_build_s": round(float(info["built_s"]), 4),
        "fts": bool(info["fts"]),
        "file_bytes": os.path.getsize(path),
    }
    return cache, path


def _timed_load(path, config, tiered):
    tracemalloc.start()
    t0 = time.perf_counter()
    cache = load_cache(path, config, tiered=tiered)
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return cache, elapsed, peak


def test_cold_start_tiered_vs_rebuild(scaled_index, capsys, benchmark):
    """E6.5 — replica boot: open the persisted index vs rebuild."""
    cache, path = scaled_index
    scale = _scale()
    eager, rebuild_s, rebuild_peak = _timed_load(path, cache.config, tiered=False)
    tiered, tiered_s, tiered_peak = _timed_load(path, cache.config, tiered=True)
    benchmark.pedantic(
        lambda: load_cache(path, cache.config).close(), rounds=1, iterations=1
    )
    speedup = rebuild_s / tiered_s if tiered_s > 0 else float("inf")
    METRICS["cold_start"] = {
        "scale": scale,
        "lexicon_literals": cache.n_literals,
        "rebuild_s": round(rebuild_s, 4),
        "tiered_boot_s": round(tiered_s, 4),
        "speedup": round(speedup, 2),
    }
    METRICS["memory"] = {
        "scale": scale,
        "capacity": cache.config.suffix_tree_capacity,
        "rebuild_peak_mb": round(rebuild_peak / 1e6, 2),
        "tiered_boot_peak_mb": round(tiered_peak / 1e6, 2),
    }
    try:
        with capsys.disabled():
            emit("E6.5 — cold start: tiered boot vs eager rebuild",
                 f"scale {scale}x ({cache.n_literals} literals): rebuild "
                 f"{rebuild_s:.3f} s / {rebuild_peak / 1e6:.1f} MB peak, "
                 f"tiered boot {tiered_s:.3f} s / {tiered_peak / 1e6:.1f} MB "
                 f"peak -> {speedup:.1f}x faster")
        # Parity first: a fast boot that serves different completions
        # would be worthless.
        eager_qcm = QueryCompletionModule(eager, cache.config.with_processes(1))
        tiered_qcm = QueryCompletionModule(tiered, cache.config.with_processes(1))
        for term in LOOKUP_TERMS:
            assert eager_qcm.complete(term).surfaces() == \
                tiered_qcm.complete(term).surfaces(), term
        # The boot-time gate tightens with scale: the tiered boot reads
        # ~capacity rows however big the tail grows.
        if scale >= 100:
            assert speedup >= 5.0, METRICS["cold_start"]
        elif scale >= 10:
            assert speedup >= 2.0, METRICS["cold_start"]
        # Boot memory is bounded by the tree, not the lexicon: at scale
        # the eager rebuild materializes every literal, the tiered boot
        # must not.
        if scale >= 10:
            assert tiered_peak < rebuild_peak / 2, METRICS["memory"]
        assert tiered.n_tree_strings <= cache.config.suffix_tree_capacity
    finally:
        tiered.close()


def test_tiered_completion_latency(scaled_index, capsys, benchmark):
    """E6.6 — per-keystroke latency through the on-disk tail index."""
    cache, path = scaled_index
    scale = _scale()
    tiered = load_cache(path, cache.config)
    try:
        config = cache.config.with_processes(1)
        memory_qcm = QueryCompletionModule(cache, config)
        tiered_qcm = QueryCompletionModule(tiered, config)

        def sweep(qcm):
            for term in LOOKUP_TERMS:
                qcm.complete(term)

        sweep(memory_qcm)  # warm both paths before timing
        sweep(tiered_qcm)
        best = {}
        for name, qcm in (("memory", memory_qcm), ("tiered", tiered_qcm)):
            samples = []
            for _ in range(5):
                t0 = time.perf_counter()
                sweep(qcm)
                samples.append(time.perf_counter() - t0)
            best[name] = min(samples)
        benchmark.pedantic(lambda: sweep(tiered_qcm), rounds=1, iterations=1)
        ratio = best["tiered"] / best["memory"] if best["memory"] > 0 else 1.0
        per_ms = {
            name: seconds / len(LOOKUP_TERMS) * 1000
            for name, seconds in best.items()
        }
        METRICS["tiered_latency"] = {
            "scale": scale,
            "memory_ms": round(per_ms["memory"], 3),
            "tiered_ms": round(per_ms["tiered"], 3),
            "ratio": round(ratio, 3),
        }
        with capsys.disabled():
            emit("E6.6 — completion latency: in-memory vs tiered",
                 f"scale {scale}x: memory {per_ms['memory']:.3f} ms/lookup, "
                 f"tiered {per_ms['tiered']:.3f} ms/lookup "
                 f"(ratio {ratio:.2f}, gate at 1x: <= 1.1)")
        if scale == 1:
            assert ratio <= 1.1, METRICS["tiered_latency"]
        else:
            # At scale the in-memory bins scan grows linearly while the
            # indexed lookup should not regress past it.
            assert ratio <= 1.1 or per_ms["tiered"] <= per_ms["memory"] + 2.0, \
                METRICS["tiered_latency"]
    finally:
        tiered.close()


def test_write_json(qcm):
    """Write the accumulated metrics as the CI artifact (last in file)."""
    json_path = os.environ.get("BENCH_JSON")
    assert METRICS.get("tree_lookup_ms") is not None
    if not json_path:
        return
    with open(json_path, "w") as handle:
        json.dump(METRICS, handle, indent=2)
    print(f"\nresults written to {json_path}")
if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
