#!/usr/bin/env python3
"""QSM suggestion-round economics: batched VALUES probes over live HTTP.

Stands up a loopback :class:`SparqlHttpServer` holding the synthetic
dataset, initializes a :class:`SapphireServer` **over the wire** (the
whole Section 5 crawl travels as HTTP requests), and runs the same QSM
alternative-terms suggestion rounds through two configurations:

* **batched** — the default: every probed query position ships all its
  candidate terms as one ``VALUES``-constrained probe, which the
  federated planner executes as a single
  :class:`~repro.sparql.plan.RemoteBindJoinNode` request per endpoint;
* **per-candidate** — ``qsm_batched_probes=False``, the classic
  Algorithm 2 loop issuing one query per candidate (the seed behaviour
  this PR replaces).

Gate (runs in ``--quick`` CI mode too):

* both configurations must produce **identical suggestions**
  (message + answer-count parity);
* the batched rounds must issue **>= 2x fewer HTTP requests** than the
  per-candidate rounds, measured both client-side (query logs) and
  server-side (``/stats`` request counters reconcile).

``--json PATH`` (via ``conftest.bench_main``) writes the machine-readable
results CI uploads as a ``BENCH_*.json`` artifact.

Run:  PYTHONPATH=src python benchmarks/bench_qsm_probes.py [--quick] [--json out.json]
"""

from __future__ import annotations

import json
import os
import time
import urllib.request

import pytest
from conftest import emit

from repro import EndpointConfig, SapphireConfig, SapphireServer, SparqlEndpoint
from repro.data import DatasetConfig, build_dataset
from repro.net import HttpSparqlEndpoint, SparqlHttpServer
from repro.sparql.parser import parse_query

#: The gate: batching must cut suggestion-round HTTP traffic this much.
MIN_REQUEST_REDUCTION = 2.0

#: Suggestion rounds modelled on the study queries (misspelled
#: predicates and literals with rich candidate sets in the cache).
ROUND_QUERIES = [
    'SELECT ?p WHERE { ?p foaf:surname "Kennedys"@en }',
    'SELECT ?b WHERE { ?b dbo:wifes ?w . ?b foaf:name "Tom Hanks"@en }',
    'SELECT ?s WHERE { ?s dbo:almaMater "Princeton Universiti"@en }',
]


def fetch_requests(server) -> int:
    url = f"http://{server.host}:{server.port}/stats"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.load(response)["requests"]


@pytest.fixture(scope="module")
def stack():
    dataset = build_dataset(DatasetConfig.tiny())
    endpoint = SparqlEndpoint(
        dataset.store, EndpointConfig.warehouse(), name="data"
    )
    server = SparqlHttpServer(endpoint).start()
    yield server
    server.stop()


def make_sapphire(http_server, batched):
    """A SapphireServer whose only endpoint is reached over HTTP —
    initialization and every probe go across the loopback wire."""
    client = HttpSparqlEndpoint(
        http_server.url, name=f"wire-{'batched' if batched else 'classic'}",
        timeout_s=30.0,
    )
    config = SapphireConfig(
        suffix_tree_capacity=500, processes=1, qsm_batched_probes=batched
    )
    sapphire = SapphireServer(config)
    sapphire.register_endpoint(client, warehouse=True)
    return sapphire, client


def run_rounds(sapphire, client, http_server):
    """All suggestion rounds; returns (signatures, client_requests,
    server_requests).

    Counted **cold**: a suggestion round always serves a query the user
    just composed, so the realistic per-round traffic includes the
    source-selection ASK probes alongside the candidate probes (both
    configurations pay them identically).
    """
    client.reset_log()
    server_before = fetch_requests(http_server)
    signatures = []
    for query in ROUND_QUERIES:
        suggestions = sapphire.terms_finder.suggest(parse_query(query))
        signatures.append([
            (s.message(), s.n_answers, len(s.prefetched.rows) if s.prefetched else 0)
            for s in suggestions
        ])
    client_requests = client.query_count
    server_requests = fetch_requests(http_server) - server_before
    return signatures, client_requests, server_requests


def test_batched_suggestion_rounds(stack, benchmark):
    batched, batched_client = make_sapphire(stack, batched=True)
    classic, classic_client = make_sapphire(stack, batched=False)

    batched_sigs, batched_reqs, batched_server = run_rounds(
        batched, batched_client, stack
    )
    classic_sigs, classic_reqs, classic_server = run_rounds(
        classic, classic_client, stack
    )

    # -- suggestion parity gate ----------------------------------------
    assert batched_sigs == classic_sigs
    assert any(sig for sig in batched_sigs), "rounds produced no suggestions"

    # -- client/server reconciliation ----------------------------------
    assert batched_reqs == batched_server
    assert classic_reqs == classic_server

    # -- round-trip gate -----------------------------------------------
    reduction = classic_reqs / max(batched_reqs, 1)
    assert reduction >= MIN_REQUEST_REDUCTION, (
        f"batched rounds used {batched_reqs} requests vs {classic_reqs} "
        f"per-candidate — only {reduction:.1f}x better, gate is "
        f"{MIN_REQUEST_REDUCTION}x"
    )

    # -- timed rounds (pytest-benchmark; a single pass under --quick) --
    def timed_round():
        suggestions = batched.terms_finder.suggest(parse_query(ROUND_QUERIES[0]))
        assert suggestions

    started = time.perf_counter()
    benchmark(timed_round)
    elapsed = time.perf_counter() - started

    emit(
        "QSM suggestion rounds — batched VALUES probes vs per-candidate",
        f"rounds:               {len(ROUND_QUERIES)} queries over loopback HTTP\n"
        f"requests (batched):   {batched_reqs}\n"
        f"requests (1/cand.):   {classic_reqs}\n"
        f"reduction:            {reduction:.1f}x  (gate >= "
        f"{MIN_REQUEST_REDUCTION:.0f}x)\n"
        f"parity:               batched == per-candidate suggestions\n"
        f"stats reconciled:     client and /stats counters agree",
    )

    json_path = os.environ.get("BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "qsm_probes",
            "rounds": len(ROUND_QUERIES),
            "requests_batched": batched_reqs,
            "requests_per_candidate": classic_reqs,
            "reduction": reduction,
            "bench_seconds": elapsed,
            "gate": {
                "min_reduction": MIN_REQUEST_REDUCTION,
                "parity_mismatches": 0,
                "reconciled": True,
                "pass": True,
            },
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nresults written to {json_path}")


def test_probe_explain_is_free(stack):
    """explain_suggestions shows the batched plan without data requests
    beyond the (cached) source-selection probes."""
    sapphire, client = make_sapphire(stack, batched=True)
    sapphire.terms_finder.suggest(parse_query(ROUND_QUERIES[0]))  # warm
    plan = sapphire.explain_suggestions(ROUND_QUERIES[0])
    assert "sapphire_probe" in plan
    assert "RemoteBindJoin" in plan or "RemoteScan" in plan
    client.reset_log()
    sapphire.explain_suggestions(ROUND_QUERIES[0])
    assert client.query_count == 0


if __name__ == "__main__":
    import sys

    from conftest import bench_main

    sys.exit(bench_main(__file__, sys.argv[1:]))
